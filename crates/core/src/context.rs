//! Shared per-device compile-time precomputation.
//!
//! Every [`Compiler::compile`](crate::Compiler::compile) call needs the
//! same device-wide structures: the crosstalk graph, the parking
//! assignment, the reachable interaction band, the mean anharmonicity,
//! the per-strategy static colorings/frequencies, and the results of
//! `smt_find` for each color count. None of them depend on the program
//! being compiled, so a compilation service rebuilding them per job wastes
//! almost all of its time — the static Baseline S/G solve alone costs
//! hundreds of milliseconds on a 16-qubit mesh.
//!
//! [`CompileContext`] computes them once per `(device, config)` pair and
//! is shared via [`Arc`] by [`Compiler`](crate::Compiler),
//! [`BatchCompiler`](crate::batch::BatchCompiler), and the bench
//! binaries. All caching is either immutable-after-construction or behind
//! interior locks, so a context can serve many compilation threads at
//! once; and because every cached value is a pure function of its key,
//! schedules compiled through a warm context are bit-identical to
//! schedules compiled from scratch (the determinism suite asserts this).

use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::frequency;
use fastsc_device::{Band, Device};
use fastsc_graph::coloring;
use fastsc_graph::crosstalk::CrosstalkGraph;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The program-independent static frequency assignment shared by
/// Baseline S and Baseline G: one Welsh–Powell coloring of the full
/// crosstalk graph, solved once, serving both as the per-coupling
/// frequency table and as Baseline G's tiling pattern.
#[derive(Debug, Clone)]
pub struct StaticAssignment {
    /// `colors[coupling]` — the crosstalk-graph coloring.
    pub colors: Vec<usize>,
    /// Number of distinct colors in `colors`.
    pub color_count: usize,
    /// `freqs[coupling]` — the interaction frequency of each coupling.
    pub freqs: Vec<f64>,
}

/// One `smt_find` memo entry in portable form: the full key as raw
/// IEEE-754 bits plus the solved frequencies, exactly as the persistent
/// artifact store serializes it. Keys travel as bits so `-0.0`/`0.0`
/// and NaN payloads survive a round trip distinct, and a re-imported
/// entry can only ever hit for the identical solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtMemoEntry {
    /// Number of frequencies requested.
    pub k: usize,
    /// Band lower edge, raw bits.
    pub band_lo: u64,
    /// Band upper edge, raw bits.
    pub band_hi: u64,
    /// Anharmonicity, raw bits.
    pub alpha: u64,
    /// Solver tolerance, raw bits.
    pub tol: u64,
    /// The solved frequencies (`values.len() == k`).
    pub values: Vec<f64>,
}

/// Memo key for `smt_find` results: the full argument tuple, with floats
/// compared bit-exactly so a hit can only ever return the value the same
/// call would have computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SmtKey {
    k: usize,
    band_lo: u64,
    band_hi: u64,
    alpha: u64,
    tol: u64,
}

impl SmtKey {
    fn new(k: usize, band: Band, alpha: f64, tol: f64) -> Self {
        SmtKey {
            k,
            band_lo: band.lo.to_bits(),
            band_hi: band.hi.to_bits(),
            alpha: alpha.to_bits(),
            tol: tol.to_bits(),
        }
    }
}

/// Per-device precomputation shared across compiles (see the
/// [module docs](self)).
///
/// # Example
///
/// ```
/// use fastsc_core::{CompileContext, Compiler, CompilerConfig, Strategy};
/// use fastsc_device::Device;
/// use fastsc_workloads::Benchmark;
/// use std::sync::Arc;
///
/// let context = Arc::new(
///     CompileContext::new(Device::grid(3, 3, 7), CompilerConfig::default())?,
/// );
/// // Many compilers (e.g. one per service thread) share one context.
/// let a = Compiler::with_context(Arc::clone(&context));
/// let b = Compiler::with_context(Arc::clone(&context));
/// let program = Benchmark::Xeb(9, 3).build(7);
/// let ca = a.compile(&program, Strategy::ColorDynamic)?;
/// let cb = b.compile(&program, Strategy::ColorDynamic)?;
/// assert_eq!(ca.schedule, cb.schedule);
/// # Ok::<(), fastsc_core::CompileError>(())
/// ```
#[derive(Debug)]
pub struct CompileContext {
    device: Device,
    config: CompilerConfig,
    /// The distance-`d` crosstalk graph, built lazily: its pairwise
    /// coupling-distance sweep is the one device-wide structure that is
    /// quadratic in coupling count, and the partitioned compile path for
    /// 1000+-qubit devices never needs the whole-device version (regions
    /// build their own small ones).
    xtalk: OnceLock<CrosstalkGraph>,
    parking: Vec<f64>,
    band: Band,
    alpha: f64,
    baseline_n_freqs: Vec<f64>,
    baseline_u_freqs: Vec<f64>,
    /// Baseline S/G static assignment, solved lazily (ColorDynamic-only
    /// traffic never pays for it) and exactly once.
    statics: OnceLock<Result<StaticAssignment, CompileError>>,
    /// Partition-and-stitch state (region subdevices, sub-contexts, cut
    /// maps), solved lazily when `config.partition` asks for it. `None`
    /// when partitioning is disabled or the device does not split.
    partitioned:
        OnceLock<Result<Option<Arc<crate::partition::PartitionedState>>, CompileError>>,
    /// Concurrent `smt_find` memo keyed by `(k, band, alpha, tol)`.
    /// Behind an `Arc` so region sub-contexts of a partitioned device
    /// share the parent's memo: the key includes every input of the
    /// solve, so a region never re-derives a value the whole device (or
    /// a sibling region) already solved.
    smt_memo: Arc<RwLock<HashMap<SmtKey, Arc<Vec<f64>>>>>,
    /// Hard cap on memoized `smt_find` entries (see
    /// [`smt_memo_capacity`](Self::smt_memo_capacity)).
    smt_memo_capacity: usize,
}

/// Default cap on distinct memoized `smt_find` results. Real traffic
/// needs one entry per distinct per-cycle color count — a handful — so a
/// four-digit cap is unreachable except by adversarial batches sweeping
/// `max_colors`, which this bound keeps from growing the memo without
/// limit.
pub const DEFAULT_SMT_MEMO_CAPACITY: usize = 1024;

impl CompileContext {
    /// Builds the context for a `(device, config)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::FrequencyBandExhausted`] when the parking
    /// assignment cannot be solved or the reachable interaction band is
    /// empty — the same errors (in the same order) a direct compile
    /// would surface.
    pub fn new(device: Device, config: CompilerConfig) -> Result<Self, CompileError> {
        let tol = config.smt_tolerance;
        let parking = frequency::parking_assignment(&device, tol)?;
        let band = frequency::reachable_interaction_band(&device)?;
        let alpha = frequency::mean_anharmonicity(&device);

        // Baseline N: a quasi-random (golden-ratio hash) per-coupling
        // value, ignoring adjacency entirely — the "separated idle and
        // interaction frequencies" of a conventional compiler, without
        // any crosstalk model. Couplings are exactly the connectivity
        // edges (same indexing), so the tables never need the crosstalk
        // graph.
        let n_couplings = device.connectivity().edge_count();
        let baseline_n_freqs =
            (0..n_couplings).map(|e| Self::baseline_n_frequency(e, band)).collect();
        Ok(Self::from_parts(device, config, parking, band, alpha, baseline_n_freqs))
    }

    /// Baseline N's golden-ratio hash for global coupling index `e` in
    /// `band` — factored out so region sub-contexts of a partitioned
    /// device can inject the *global* table values for their couplings.
    pub(crate) fn baseline_n_frequency(e: usize, band: Band) -> f64 {
        const GOLDEN: f64 = 0.618_033_988_749_895;
        band.lo + ((e as f64 + 1.0) * GOLDEN).fract() * band.width()
    }

    /// A context with every derived table injected rather than computed —
    /// the constructor the partition planner uses to give a region
    /// sub-device the *global* parking restriction, interaction band,
    /// anharmonicity, and Baseline N values, so region compiles agree
    /// with whole-device compiles wherever the schedules overlap.
    pub(crate) fn from_parts(
        device: Device,
        config: CompilerConfig,
        parking: Vec<f64>,
        band: Band,
        alpha: f64,
        baseline_n_freqs: Vec<f64>,
    ) -> Self {
        let n_couplings = device.connectivity().edge_count();
        debug_assert_eq!(parking.len(), device.n_qubits());
        debug_assert_eq!(baseline_n_freqs.len(), n_couplings);
        let baseline_u_freqs = vec![band.center(); n_couplings];
        CompileContext {
            device,
            config,
            xtalk: OnceLock::new(),
            parking,
            band,
            alpha,
            baseline_n_freqs,
            baseline_u_freqs,
            statics: OnceLock::new(),
            partitioned: OnceLock::new(),
            smt_memo: Arc::new(RwLock::new(HashMap::new())),
            smt_memo_capacity: DEFAULT_SMT_MEMO_CAPACITY,
        }
    }

    /// Rebinds this context's SMT memo to `parent`'s, so solves are
    /// shared both ways. Region sub-contexts of a partitioned device use
    /// this: the memo key covers every input of the solve (`k`, band,
    /// anharmonicity, tolerance — all injected from the parent), so
    /// sharing changes no result, only how many times the binary search
    /// runs.
    pub(crate) fn with_shared_smt_memo(mut self, parent: &CompileContext) -> Self {
        self.smt_memo = Arc::clone(&parent.smt_memo);
        self.smt_memo_capacity = parent.smt_memo_capacity;
        self
    }

    /// Overrides the memo cap (default
    /// [`DEFAULT_SMT_MEMO_CAPACITY`]). A capacity of 0 disables
    /// memoization entirely; results stay correct either way, since the
    /// memo is a pure cache.
    pub fn with_smt_memo_capacity(mut self, capacity: usize) -> Self {
        self.smt_memo_capacity = capacity;
        self
    }

    /// The maximum number of `smt_find` results this context will
    /// memoize. Once the memo is full, further *distinct* keys are solved
    /// correctly but not retained, so the memo cannot grow without limit
    /// under adversarial batches (e.g. a `max_colors` sweep).
    pub fn smt_memo_capacity(&self) -> usize {
        self.smt_memo_capacity
    }

    /// The device this context was built for.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configuration this context was built for.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The distance-`d` crosstalk graph, built on first use. The
    /// whole-device graph costs a pairwise sweep over couplings (the
    /// dominant cold-start term on 1000+-qubit devices); partitioned
    /// compiles never call this on the global context.
    pub fn xtalk(&self) -> &CrosstalkGraph {
        self.xtalk.get_or_init(|| self.device.crosstalk_graph(self.config.crosstalk_distance))
    }

    /// The partition-and-stitch state, built on first use: `None` when
    /// `config.partition` is unset, the crosstalk distance is not 1, or
    /// the partition plan yields a single region (whole-device compile
    /// is used in all three cases).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError::FrequencyBandExhausted`] from region
    /// sub-context construction.
    pub(crate) fn partitioned(
        &self,
    ) -> Result<Option<Arc<crate::partition::PartitionedState>>, CompileError> {
        self.partitioned.get_or_init(|| crate::partition::PartitionedState::build(self)).clone()
    }

    /// Parking (idle) frequency of every qubit.
    pub fn parking(&self) -> &[f64] {
        &self.parking
    }

    /// The reachable interaction band.
    pub fn band(&self) -> Band {
        self.band
    }

    /// Mean anharmonicity across the device.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The minimum parking-frequency separation between directly coupled
    /// qubits — the worst idle detuning any physical coupling sits at
    /// between gates, i.e. the static figure that bounds this device's
    /// idle-crosstalk floor. Returns `f64::INFINITY` for a device with
    /// no couplings.
    ///
    /// Telemetry layers feed this (with [`band`](Self::band)) into
    /// `fastsc_noise::static_success_estimate` to score shards for
    /// fidelity-aware placement without compiling anything.
    pub fn min_coupled_parking_separation(&self) -> f64 {
        self.device
            .connectivity()
            .edges()
            .map(|(_, (u, v))| (self.parking[u] - self.parking[v]).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Baseline N's crowding-unaware per-coupling frequencies.
    pub fn baseline_n_freqs(&self) -> &[f64] {
        &self.baseline_n_freqs
    }

    /// Baseline U's shared per-coupling frequency table.
    pub fn baseline_u_freqs(&self) -> &[f64] {
        &self.baseline_u_freqs
    }

    /// The Baseline S/G static assignment: the full crosstalk graph is
    /// colored **once** and the coloring serves both the frequency table
    /// and the gmon tiling pattern (the seed implementation ran
    /// Welsh–Powell twice per compile).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::FrequencyBandExhausted`] when the static
    /// color count does not fit the interaction band.
    pub fn statics(&self) -> Result<&StaticAssignment, CompileError> {
        self.statics
            .get_or_init(|| {
                let colors = coloring::welsh_powell(self.xtalk().graph());
                let color_count = coloring::color_count(&colors);
                let values = self.smt_frequencies(color_count)?.0;
                let freq_of_color = frequency::freq_of_color_by_multiplicity(&colors, &values);
                let freqs = colors.iter().map(|&c| freq_of_color[c]).collect();
                Ok(StaticAssignment { colors, color_count, freqs })
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// `smt_find(k, band, alpha, tol)` through the concurrent memo:
    /// returns the `k` frequencies (descending) plus whether this call
    /// actually invoked the solver (`true` on a memo miss).
    ///
    /// Hits are retained up to [`smt_memo_capacity`]
    /// (Self::smt_memo_capacity); beyond the cap, distinct keys are still
    /// solved correctly but not memoized. `smt_find` is a pure function
    /// of the key, so a warm hit is bit-identical to a fresh solve. The
    /// solver runs outside the lock; when two threads race on the same
    /// key the first insert wins and both observe the identical value.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError::FrequencyBandExhausted`] from
    /// `smt_find` (errors are not memoized).
    pub fn smt_frequencies(&self, k: usize) -> Result<(Arc<Vec<f64>>, bool), CompileError> {
        let key = SmtKey::new(k, self.band, self.alpha, self.config.smt_tolerance);
        if let Some(hit) = self.read_memo(&key) {
            fastsc_telemetry::metrics().smt_memo_hits.inc();
            return Ok((hit, false));
        }
        let solve_started = std::time::Instant::now();
        let solved =
            Arc::new(frequency::smt_find(k, self.band, self.alpha, self.config.smt_tolerance)?);
        let registry = fastsc_telemetry::metrics();
        registry.smt_solves.inc();
        registry.smt_solve.observe(solve_started.elapsed());
        let mut memo = self.smt_memo.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let value = match memo.get(&key) {
            // A concurrent solver won the race: its value is canonical.
            Some(existing) => Arc::clone(existing),
            None if memo.len() < self.smt_memo_capacity => {
                memo.insert(key, Arc::clone(&solved));
                solved
            }
            // Memo full: hand the caller its solve without retaining it.
            None => solved,
        };
        Ok((value, true))
    }

    /// Adopts a persisted static assignment, skipping the Welsh–Powell
    /// coloring and SMT solve [`statics`](Self::statics) would run.
    /// Returns `false` (and solves cold later) when the assignment fails
    /// structural validation or the statics were already solved.
    ///
    /// Callers key persisted assignments by `(device fingerprint, config
    /// fingerprint)`, so a seeded assignment is the output of the
    /// identical pure solve — bit-identical to what a cold
    /// [`statics`](Self::statics) call would compute. The checks here
    /// are a second line of defense: a damaged artifact that slipped
    /// through its checksum can degrade the warm start but never
    /// produce an assignment a cold solve could not have.
    pub fn seed_statics(&self, statics: StaticAssignment) -> bool {
        let n_couplings = self.device.connectivity().edge_count();
        let valid = statics.colors.len() == n_couplings
            && statics.freqs.len() == n_couplings
            && statics.color_count == coloring::color_count(&statics.colors)
            && statics.freqs.iter().all(|&f| self.band.contains(f));
        valid && self.statics.set(Ok(statics)).is_ok()
    }

    /// The static assignment, if it has been solved (or seeded) — a
    /// non-forcing peek for artifact export: exporting a context never
    /// triggers the solve it exists to skip.
    pub fn export_statics(&self) -> Option<StaticAssignment> {
        self.statics.get().and_then(|r| r.as_ref().ok()).cloned()
    }

    /// Every memoized `smt_find` result in portable form, sorted by key.
    pub fn export_smt_memo(&self) -> Vec<SmtMemoEntry> {
        let memo = self.smt_memo.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut entries: Vec<SmtMemoEntry> = memo
            .iter()
            .map(|(key, values)| SmtMemoEntry {
                k: key.k,
                band_lo: key.band_lo,
                band_hi: key.band_hi,
                alpha: key.alpha,
                tol: key.tol,
                values: (**values).clone(),
            })
            .collect();
        entries.sort_by(|a, b| {
            (a.k, a.band_lo, a.band_hi, a.alpha, a.tol)
                .cmp(&(b.k, b.band_lo, b.band_hi, b.alpha, b.tol))
        });
        entries
    }

    /// Seeds the `smt_find` memo from persisted entries; returns how
    /// many were adopted. An entry is adopted only when its key matches
    /// this context's band, anharmonicity, and tolerance bit-for-bit
    /// (anything else could never be looked up here), its value count
    /// matches `k`, the key is not already memoized (first write wins,
    /// as everywhere in the stack), and the capacity allows it.
    pub fn seed_smt_memo(&self, entries: impl IntoIterator<Item = SmtMemoEntry>) -> usize {
        let mut memo = self.smt_memo.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut adopted = 0;
        for e in entries {
            let key = SmtKey {
                k: e.k,
                band_lo: e.band_lo,
                band_hi: e.band_hi,
                alpha: e.alpha,
                tol: e.tol,
            };
            let relevant = key.band_lo == self.band.lo.to_bits()
                && key.band_hi == self.band.hi.to_bits()
                && key.alpha == self.alpha.to_bits()
                && key.tol == self.config.smt_tolerance.to_bits();
            if relevant
                && e.values.len() == e.k
                && memo.len() < self.smt_memo_capacity
                && !memo.contains_key(&key)
            {
                memo.insert(key, Arc::new(e.values));
                adopted += 1;
            }
        }
        adopted
    }

    fn read_memo(&self, key: &SmtKey) -> Option<Arc<Vec<f64>>> {
        let memo = self.smt_memo.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        memo.get(key).map(Arc::clone)
    }

    /// Number of distinct `smt_find` results currently memoized.
    pub fn smt_memo_len(&self) -> usize {
        self.smt_memo.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CompileContext {
        CompileContext::new(Device::grid(3, 3, 7), CompilerConfig::default()).expect("builds")
    }

    #[test]
    fn context_matches_direct_computation() {
        let c = ctx();
        let device = Device::grid(3, 3, 7);
        let tol = CompilerConfig::default().smt_tolerance;
        assert_eq!(
            c.parking(),
            &frequency::parking_assignment(&device, tol).expect("fits")[..]
        );
        let band = frequency::reachable_interaction_band(&device).expect("non-empty");
        assert_eq!(c.band().lo.to_bits(), band.lo.to_bits());
        assert_eq!(c.band().hi.to_bits(), band.hi.to_bits());
        assert_eq!(c.alpha().to_bits(), frequency::mean_anharmonicity(&device).to_bits());
        assert_eq!(c.xtalk().coupling_count(), device.connectivity().edge_count());
    }

    #[test]
    fn statics_solved_once_and_consistent() {
        let c = ctx();
        let first = c.statics().expect("solves").clone();
        let again = c.statics().expect("cached");
        assert_eq!(first.colors, again.colors);
        assert_eq!(first.color_count, coloring::color_count(&first.colors));
        assert_eq!(first.freqs.len(), c.xtalk().coupling_count());
        // The coloring is the plain Welsh–Powell coloring of the graph.
        assert_eq!(first.colors, coloring::welsh_powell(c.xtalk().graph()));
        // Every frequency is in the reachable band.
        for &f in &first.freqs {
            assert!(c.band().contains(f), "{f} outside the interaction band");
        }
    }

    #[test]
    fn smt_memo_hits_return_identical_values() {
        let c = ctx();
        let (first, miss1) = c.smt_frequencies(3).expect("fits");
        let (second, miss2) = c.smt_frequencies(3).expect("fits");
        assert!(miss1, "first call must invoke the solver");
        assert!(!miss2, "second call must hit the memo");
        assert!(Arc::ptr_eq(&first, &second), "hits share the cached allocation");
        let direct = frequency::smt_find(3, c.band(), c.alpha(), c.config().smt_tolerance)
            .expect("fits");
        assert_eq!(first.len(), direct.len());
        for (a, b) in first.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits(), "memo must be bit-identical to a fresh solve");
        }
        assert_eq!(c.smt_memo_len(), 1);
    }

    #[test]
    fn parking_separation_is_the_worst_coupled_pair() {
        let c = ctx();
        let device = Device::grid(3, 3, 7);
        let by_hand = device
            .connectivity()
            .edges()
            .map(|(_, (u, v))| (c.parking()[u] - c.parking()[v]).abs())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(c.min_coupled_parking_separation().to_bits(), by_hand.to_bits());
        assert!(
            c.min_coupled_parking_separation() > 0.0,
            "coupled qubits must not park on top of each other"
        );
    }

    #[test]
    fn baseline_tables_sized_by_coupling_count() {
        let c = ctx();
        assert_eq!(c.baseline_n_freqs().len(), c.xtalk().coupling_count());
        assert_eq!(c.baseline_u_freqs().len(), c.xtalk().coupling_count());
        for &f in c.baseline_n_freqs() {
            assert!(c.band().contains(f));
        }
        assert!(c.baseline_u_freqs().iter().all(|&f| (f - c.band().center()).abs() < 1e-12));
    }

    #[test]
    fn smt_memo_is_bounded() {
        let c = ctx().with_smt_memo_capacity(3);
        assert_eq!(c.smt_memo_capacity(), 3);
        // An adversarial sweep over distinct color counts: the memo stops
        // retaining at the cap, but every solve stays correct.
        for k in 1..=6 {
            let (value, miss) = c.smt_frequencies(k).expect("band fits");
            assert!(miss, "k={k} is a distinct key, must invoke the solver");
            let direct = frequency::smt_find(k, c.band(), c.alpha(), c.config().smt_tolerance)
                .expect("band fits");
            assert_eq!(value.len(), direct.len());
            for (a, b) in value.iter().zip(&direct) {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k} diverged past the cap");
            }
        }
        assert_eq!(c.smt_memo_len(), 3, "memo must stop growing at its capacity");
        // Keys admitted before the cap still hit.
        let (_, miss) = c.smt_frequencies(1).expect("band fits");
        assert!(!miss, "pre-cap keys stay memoized");
        // Keys past the cap keep re-solving (bounded, not evicting).
        let (_, miss) = c.smt_frequencies(6).expect("band fits");
        assert!(miss, "post-cap keys are not retained");
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let c = ctx().with_smt_memo_capacity(0);
        let (first, miss1) = c.smt_frequencies(2).expect("band fits");
        let (second, miss2) = c.smt_frequencies(2).expect("band fits");
        assert!(miss1 && miss2, "nothing is retained at capacity 0");
        assert_eq!(c.smt_memo_len(), 0);
        for (a, b) in first.iter().zip(second.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn default_capacity_is_generous() {
        assert_eq!(ctx().smt_memo_capacity(), DEFAULT_SMT_MEMO_CAPACITY);
    }

    #[test]
    fn seeded_statics_match_cold_solve_bit_for_bit() {
        let cold = ctx();
        let solved = cold.statics().expect("solves").clone();

        let warm = ctx();
        assert!(warm.seed_statics(solved.clone()), "valid assignment is adopted");
        let served = warm.statics().expect("served from seed");
        assert_eq!(served.colors, solved.colors);
        assert_eq!(served.color_count, solved.color_count);
        let bits = |fs: &[f64]| fs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&served.freqs), bits(&solved.freqs));
        assert_eq!(warm.smt_memo_len(), 0, "the seed skipped the SMT solve entirely");
    }

    #[test]
    fn seed_statics_rejects_damaged_assignments() {
        let solved = ctx().statics().expect("solves").clone();
        let reject = |mutate: fn(&mut StaticAssignment)| {
            let mut damaged = solved.clone();
            mutate(&mut damaged);
            let c = ctx();
            assert!(!c.seed_statics(damaged), "damaged assignment must be refused");
            // …and the cold solve still works afterwards.
            assert_eq!(c.statics().expect("cold solve").colors, solved.colors);
        };
        reject(|s| {
            s.colors.pop();
            s.freqs.pop();
        });
        reject(|s| s.color_count += 1);
        reject(|s| s.freqs[0] = 100.0); // far outside any interaction band
                                        // Already-solved contexts refuse a late seed.
        let c = ctx();
        let _ = c.statics().expect("solves");
        assert!(!c.seed_statics(solved));
    }

    #[test]
    fn smt_memo_export_import_round_trips_bit_exactly() {
        let warm_source = ctx();
        let (solved, _) = warm_source.smt_frequencies(3).expect("fits");
        let (_, _) = warm_source.smt_frequencies(4).expect("fits");
        let entries = warm_source.export_smt_memo();
        assert_eq!(entries.len(), 2);
        assert!(entries.windows(2).all(|w| w[0].k < w[1].k), "export is sorted");

        let target = ctx();
        assert_eq!(target.seed_smt_memo(entries.clone()), 2);
        assert_eq!(target.smt_memo_len(), 2);
        let (served, miss) = target.smt_frequencies(3).expect("fits");
        assert!(!miss, "the seeded entry must hit");
        for (a, b) in served.iter().zip(solved.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Re-seeding is idempotent (first write wins).
        assert_eq!(target.seed_smt_memo(entries), 0);
    }

    #[test]
    fn seed_smt_memo_filters_irrelevant_and_damaged_entries() {
        let source = ctx();
        let _ = source.smt_frequencies(2).expect("fits");
        let mut entries = source.export_smt_memo();
        // A foreign-band entry: could never be looked up by this context.
        let mut foreign = entries[0].clone();
        foreign.band_lo ^= 1;
        // A damaged entry: value count disagrees with k.
        let mut damaged = entries[0].clone();
        damaged.k = 5;
        entries.push(foreign);
        entries.push(damaged);

        let target = ctx();
        assert_eq!(target.seed_smt_memo(entries), 1, "only the genuine entry lands");
        assert_eq!(target.smt_memo_len(), 1);
        // Capacity bounds seeding exactly like solving.
        let capped = ctx().with_smt_memo_capacity(0);
        assert_eq!(capped.seed_smt_memo(source.export_smt_memo()), 0);
    }

    #[test]
    fn unreachable_band_fails_construction() {
        use fastsc_device::DeviceBuilder;
        let mut b = DeviceBuilder::new(fastsc_graph::topology::grid(2, 2));
        b.seed(0).omega_max_distribution(5.5, 0.0); // below the 6 GHz floor
        let result = CompileContext::new(b.build(), CompilerConfig::default());
        assert!(matches!(result, Err(CompileError::FrequencyBandExhausted { .. })));
    }
}

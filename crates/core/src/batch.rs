//! Rayon-parallel batch compilation.
//!
//! The paper evaluates one `(program, strategy)` pair at a time; a
//! production compilation service instead sees *queues* of jobs sharing a
//! device. [`BatchCompiler`] is that front end: it owns one [`Compiler`]
//! (device model + configuration built once) and fans a vector of
//! [`CompileJob`]s out across worker threads. It is deliberately the
//! *single-shard* special case of the multi-device `fastsc_service`
//! compile service — both dispatch every job through the same
//! [`compile_isolated`] primitive, the service adding shard routing and a
//! whole-schedule result cache on top.
//!
//! Guarantees:
//!
//! * **Order** — `results[i]` always corresponds to `jobs[i]`.
//! * **Isolation** — a job that fails (or panics inside a compilation
//!   stage) yields `Err(CompileError)` in its slot; the other jobs are
//!   unaffected.
//! * **Determinism** — compilation is a pure function of
//!   `(device, config, program, strategy)`, so the parallel results are
//!   bit-identical to a sequential run of the same batch.
//!
//! # Example
//!
//! ```
//! use fastsc_core::batch::{BatchCompiler, CompileJob};
//! use fastsc_core::{CompilerConfig, Strategy};
//! use fastsc_device::Device;
//! use fastsc_workloads::Benchmark;
//!
//! let batch = BatchCompiler::new(Device::grid(3, 3, 42), CompilerConfig::default());
//! let jobs: Vec<CompileJob> = Strategy::all()
//!     .into_iter()
//!     .map(|s| CompileJob::new(Benchmark::Xeb(9, 3).build(7), s))
//!     .collect();
//! let results = batch.compile_batch(jobs);
//! assert_eq!(results.len(), 5);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use crate::config::CompilerConfig;
use crate::context::CompileContext;
use crate::engine::{CompiledProgram, Compiler, Strategy};
use crate::error::CompileError;
use fastsc_device::Device;
use fastsc_ir::Circuit;
use fastsc_telemetry::TraceHandle;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// One unit of batch work: a program plus the strategy to compile it under.
#[derive(Debug, Clone)]
pub struct CompileJob {
    /// The program to compile.
    pub program: Circuit,
    /// The strategy to compile it under.
    pub strategy: Strategy,
    /// Where this job's spans should record, when the job is traced.
    /// Observation only — two jobs differing solely in `trace` compile
    /// bit-identically.
    pub trace: Option<TraceHandle>,
}

impl CompileJob {
    /// Creates an untraced job.
    pub fn new(program: Circuit, strategy: Strategy) -> Self {
        CompileJob { program, strategy, trace: None }
    }

    /// Attaches a trace handle: compile-phase spans (context build,
    /// SMT, coloring, partition, stitch) will record under it.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Compiles one program with panic isolation: a panic inside any
/// compilation stage is caught and surfaced as
/// [`CompileError::Internal`] instead of unwinding into the caller.
///
/// This is the per-job execution primitive shared by every batch front
/// end — [`BatchCompiler`] uses it for each slot, and the multi-device
/// `fastsc_service` shard router uses it for each routed job — so the
/// isolation contract ("one bad job cannot poison its batch") is defined
/// in exactly one place.
pub fn compile_isolated(
    compiler: &Compiler,
    program: &Circuit,
    strategy: Strategy,
) -> Result<CompiledProgram, CompileError> {
    catch_unwind(AssertUnwindSafe(|| compiler.compile(program, strategy))).unwrap_or_else(
        |payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(CompileError::Internal { message })
        },
    )
}

/// Compiles many jobs against one shared device, in parallel.
///
/// See the [module docs](self) for the order/isolation/determinism
/// contract.
#[derive(Debug, Clone)]
pub struct BatchCompiler {
    compiler: Compiler,
    num_threads: Option<usize>,
}

impl BatchCompiler {
    /// Creates a batch front end over a fresh [`Compiler`].
    pub fn new(device: Device, config: CompilerConfig) -> Self {
        BatchCompiler { compiler: Compiler::new(device, config), num_threads: None }
    }

    /// Wraps an existing compiler (device structures are shared by all
    /// jobs, not rebuilt per job).
    pub fn from_compiler(compiler: Compiler) -> Self {
        BatchCompiler { compiler, num_threads: None }
    }

    /// Wraps an existing shared [`CompileContext`] — the crosstalk graph,
    /// parking assignment, static colorings, and SMT memo are reused, not
    /// rebuilt, even across multiple `BatchCompiler`s. The result honors
    /// [`num_threads`](Self::num_threads) exactly like the other
    /// construction paths: the cap is applied per `compile_batch` call,
    /// not baked into the context.
    pub fn from_context(context: Arc<CompileContext>) -> Self {
        BatchCompiler::from_compiler(Compiler::with_context(context))
    }

    /// Caps the worker-thread count: every [`compile_batch`]
    /// (Self::compile_batch) call dispatches at most `n` worker tasks
    /// onto the persistent rayon pool, regardless of how this
    /// `BatchCompiler` was constructed ([`new`](Self::new),
    /// [`from_compiler`](Self::from_compiler), or
    /// [`from_context`](Self::from_context)). `num_threads(1)` forces a
    /// fully sequential run — the baseline the throughput benchmark
    /// measures the rayon path against. By default the rayon pool
    /// decides (all available cores, or `RAYON_NUM_THREADS`).
    pub fn num_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one worker thread is required");
        self.num_threads = Some(n);
        self
    }

    /// The cap installed by [`num_threads`](Self::num_threads), if any.
    pub fn thread_cap(&self) -> Option<usize> {
        self.num_threads
    }

    /// The shared underlying compiler.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Compiles every job, returning one result per job **in job order**.
    ///
    /// Failures are isolated per slot: routing/frequency errors surface as
    /// that job's [`CompileError`], and a panic inside a compilation stage
    /// is caught and converted to [`CompileError::Internal`] rather than
    /// tearing down the batch.
    pub fn compile_batch(
        &self,
        jobs: Vec<CompileJob>,
    ) -> Vec<Result<CompiledProgram, CompileError>> {
        // Warm the shared context on the calling thread so concurrent
        // workers don't race to build it redundantly. A build failure is
        // deliberately ignored here: each job surfaces it (after its own
        // routing checks) exactly like a sequential run would.
        let _ = self.compiler.context();
        match self.num_threads {
            Some(1) => self.compile_batch_sequential(jobs),
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool building is infallible")
                .install(|| jobs.into_par_iter().map(|job| self.run_job(job)).collect()),
            None => jobs.into_par_iter().map(|job| self.run_job(job)).collect(),
        }
    }

    /// Compiles every job sequentially on the calling thread. Used by the
    /// determinism tests as the reference the parallel path must match.
    pub fn compile_batch_sequential(
        &self,
        jobs: Vec<CompileJob>,
    ) -> Vec<Result<CompiledProgram, CompileError>> {
        jobs.into_iter().map(|job| self.run_job(job)).collect()
    }

    fn run_job(&self, job: CompileJob) -> Result<CompiledProgram, CompileError> {
        let _trace = job.trace.as_ref().map(TraceHandle::install);
        compile_isolated(&self.compiler, &job.program, job.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsc_workloads::Benchmark;

    #[test]
    fn empty_batch_is_fine() {
        let batch = BatchCompiler::new(Device::grid(2, 2, 1), CompilerConfig::default());
        assert!(batch.compile_batch(Vec::new()).is_empty());
    }

    #[test]
    fn oversized_program_fails_only_its_slot() {
        let batch = BatchCompiler::new(Device::grid(2, 2, 1), CompilerConfig::default());
        let jobs = vec![
            CompileJob::new(Benchmark::Bv(4).build(3), Strategy::ColorDynamic),
            // 9 qubits on a 4-qubit device: ProgramTooWide.
            CompileJob::new(Benchmark::Bv(9).build(3), Strategy::ColorDynamic),
            CompileJob::new(Benchmark::Ising(4).build(3), Strategy::BaselineU),
        ];
        let results = batch.compile_batch(jobs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(CompileError::ProgramTooWide { program: 9, device: 4 })
        ));
        assert!(results[2].is_ok());
    }
}

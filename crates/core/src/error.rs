use std::error::Error;
use std::fmt;

/// Errors raised by the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program uses more qubits than the device provides.
    ProgramTooWide {
        /// Program qubit count.
        program: usize,
        /// Device qubit count.
        device: usize,
    },
    /// A two-qubit gate touches qubits in different connected components
    /// of the device, so no `SWAP` chain can bring them together.
    Unroutable {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
    /// The frequency solver could not place the requested number of
    /// interaction frequencies in the configured band (the band is
    /// empty after clamping to the devices' reachable range).
    FrequencyBandExhausted {
        /// Number of frequencies requested.
        colors: usize,
    },
    /// A compilation stage panicked. Only surfaced by the batch front end
    /// ([`crate::batch::BatchCompiler`]), which converts per-job panics
    /// into errors so one bad job cannot poison its batch.
    Internal {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CompileError::ProgramTooWide { program, device } => {
                write!(f, "program uses {program} qubits but the device has only {device}")
            }
            CompileError::Unroutable { a, b } => {
                write!(f, "no path between physical qubits {a} and {b}; device is disconnected")
            }
            CompileError::FrequencyBandExhausted { colors } => write!(
                f,
                "cannot place {colors} interaction frequencies in the configured band"
            ),
            CompileError::Internal { ref message } => {
                write!(f, "compilation stage panicked: {message}")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CompileError::ProgramTooWide { program: 10, device: 9 };
        assert!(e.to_string().contains("10"));
        let e = CompileError::Unroutable { a: 1, b: 5 };
        assert!(e.to_string().contains("disconnected"));
        let e = CompileError::FrequencyBandExhausted { colors: 12 };
        assert!(e.to_string().contains("12"));
    }
}

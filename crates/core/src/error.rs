use std::error::Error;
use std::fmt;

/// Errors raised by the compiler.
///
/// The enum is `#[non_exhaustive]`: every layer of the stack (batch
/// front end, shard router, admission queue) has added variants of its
/// own, and future serving layers will too — downstream matches must
/// carry a wildcard arm so a new failure mode is an API *addition*, not
/// a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The program uses more qubits than the device provides.
    ProgramTooWide {
        /// Program qubit count.
        program: usize,
        /// Device qubit count.
        device: usize,
    },
    /// A two-qubit gate touches qubits in different connected components
    /// of the device, so no `SWAP` chain can bring them together.
    Unroutable {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
    /// The frequency solver could not place the requested number of
    /// interaction frequencies in the configured band (the band is
    /// empty after clamping to the devices' reachable range).
    FrequencyBandExhausted {
        /// Number of frequencies requested.
        colors: usize,
    },
    /// A compilation stage panicked. Only surfaced by the batch front end
    /// ([`crate::batch::BatchCompiler`]), which converts per-job panics
    /// into errors so one bad job cannot poison its batch.
    Internal {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// No registered shard has enough qubits for the program. Surfaced by
    /// fleet routers whose placement policy is capacity-aware: rather
    /// than routing the job to a shard where it is guaranteed to fail
    /// with [`ProgramTooWide`](Self::ProgramTooWide), routing itself
    /// rejects it.
    NoShardFits {
        /// Program qubit count.
        program: usize,
        /// Qubit count of the largest registered shard.
        max_shard: usize,
    },
    /// The job's deadline passed before a compile slot opened. Surfaced
    /// by queueing front ends: the job is expired without compiling.
    Deadline,
    /// The job was cancelled by its submitter before it started
    /// compiling.
    Cancelled,
    /// The admission queue was full and the job was turned away — either
    /// rejected at submission (`RejectWhenFull` backpressure) or shed
    /// after admission to make room for newer work (`ShedOldest`).
    QueueFull,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CompileError::ProgramTooWide { program, device } => {
                write!(f, "program uses {program} qubits but the device has only {device}")
            }
            CompileError::Unroutable { a, b } => {
                write!(f, "no path between physical qubits {a} and {b}; device is disconnected")
            }
            CompileError::FrequencyBandExhausted { colors } => write!(
                f,
                "cannot place {colors} interaction frequencies in the configured band"
            ),
            CompileError::Internal { ref message } => {
                write!(f, "compilation stage panicked: {message}")
            }
            CompileError::NoShardFits { program, max_shard } => write!(
                f,
                "program uses {program} qubits but the largest registered shard has only \
                 {max_shard}"
            ),
            CompileError::Deadline => {
                write!(f, "deadline passed before the job reached a compiler")
            }
            CompileError::Cancelled => write!(f, "job cancelled before compilation"),
            CompileError::QueueFull => {
                write!(f, "admission queue full; job rejected or shed")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CompileError::ProgramTooWide { program: 10, device: 9 };
        assert!(e.to_string().contains("10"));
        let e = CompileError::Unroutable { a: 1, b: 5 };
        assert!(e.to_string().contains("disconnected"));
        let e = CompileError::FrequencyBandExhausted { colors: 12 };
        assert!(e.to_string().contains("12"));
        let e = CompileError::NoShardFits { program: 16, max_shard: 9 };
        assert!(e.to_string().contains("16") && e.to_string().contains("9"));
        assert!(CompileError::Deadline.to_string().contains("deadline"));
        assert!(CompileError::Cancelled.to_string().contains("cancelled"));
        assert!(CompileError::QueueFull.to_string().contains("queue full"));
    }
}

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// One failed attempt in a retry chain, recorded by retrying front ends
/// and carried inside [`CompileError::Exhausted`] so operators can see
/// exactly where a poison job died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedAttempt {
    /// Shard the attempt ran on, or `None` when routing itself refused
    /// the attempt (for example every remaining shard was excluded).
    pub shard: Option<usize>,
    /// The error that attempt produced.
    pub error: CompileError,
}

impl fmt::Display for FailedAttempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shard {
            Some(shard) => write!(f, "shard {shard}: {}", self.error),
            None => write!(f, "routing: {}", self.error),
        }
    }
}

/// Errors raised by the compiler.
///
/// The enum is `#[non_exhaustive]`: every layer of the stack (batch
/// front end, shard router, admission queue) has added variants of its
/// own, and future serving layers will too — downstream matches must
/// carry a wildcard arm so a new failure mode is an API *addition*, not
/// a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The program uses more qubits than the device provides.
    ProgramTooWide {
        /// Program qubit count.
        program: usize,
        /// Device qubit count.
        device: usize,
    },
    /// A two-qubit gate touches qubits in different connected components
    /// of the device, so no `SWAP` chain can bring them together.
    Unroutable {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
    /// The frequency solver could not place the requested number of
    /// interaction frequencies in the configured band (the band is
    /// empty after clamping to the devices' reachable range).
    FrequencyBandExhausted {
        /// Number of frequencies requested.
        colors: usize,
    },
    /// A compilation stage panicked. Only surfaced by the batch front end
    /// ([`crate::batch::BatchCompiler`]), which converts per-job panics
    /// into errors so one bad job cannot poison its batch.
    Internal {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// No registered shard has enough qubits for the program. Surfaced by
    /// fleet routers whose placement policy is capacity-aware: rather
    /// than routing the job to a shard where it is guaranteed to fail
    /// with [`ProgramTooWide`](Self::ProgramTooWide), routing itself
    /// rejects it.
    NoShardFits {
        /// Program qubit count.
        program: usize,
        /// Qubit count of the largest registered shard.
        max_shard: usize,
    },
    /// The job's deadline passed before a compile slot opened. Surfaced
    /// by queueing front ends: the job is expired without compiling.
    Deadline,
    /// The job was cancelled by its submitter before it started
    /// compiling.
    Cancelled,
    /// The admission queue was full and the job was turned away — either
    /// rejected at submission (`RejectWhenFull` backpressure) or shed
    /// after admission to make room for newer work (`ShedOldest`).
    QueueFull,
    /// The job failed on every shard its retry policy allowed and was
    /// quarantined as poison instead of retrying forever. Carries the
    /// full per-attempt history, in order.
    Exhausted {
        /// Every failed attempt, in the order they were made.
        attempts: Vec<FailedAttempt>,
    },
    /// No shard in the fleet is healthy enough to accept work: every
    /// shard is quarantined by its circuit breaker. Submissions fail
    /// fast with a suggested retry delay instead of hanging waiters.
    FleetUnhealthy {
        /// How long the submitter should wait before retrying.
        retry_after: Duration,
    },
}

impl CompileError {
    /// Whether a retry — on the same shard later, or on a different
    /// shard via failover — could plausibly succeed.
    ///
    /// Deterministic program errors (too wide, unroutable, band
    /// exhausted, no shard fits) reproduce identically anywhere, and
    /// queue outcomes (deadline, cancelled, queue full) are terminal by
    /// construction, so only [`Internal`](Self::Internal) — a panicked
    /// or fault-injected compile stage, i.e. a *shard* failure rather
    /// than a *program* failure — is considered transient.
    pub fn is_transient(&self) -> bool {
        matches!(self, CompileError::Internal { .. })
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CompileError::ProgramTooWide { program, device } => {
                write!(f, "program uses {program} qubits but the device has only {device}")
            }
            CompileError::Unroutable { a, b } => {
                write!(f, "no path between physical qubits {a} and {b}; device is disconnected")
            }
            CompileError::FrequencyBandExhausted { colors } => write!(
                f,
                "cannot place {colors} interaction frequencies in the configured band"
            ),
            CompileError::Internal { ref message } => {
                write!(f, "compilation stage panicked: {message}")
            }
            CompileError::NoShardFits { program, max_shard } => write!(
                f,
                "program uses {program} qubits but the largest registered shard has only \
                 {max_shard}"
            ),
            CompileError::Deadline => {
                write!(f, "deadline passed before the job reached a compiler")
            }
            CompileError::Cancelled => write!(f, "job cancelled before compilation"),
            CompileError::QueueFull => {
                write!(f, "admission queue full; job rejected or shed")
            }
            CompileError::Exhausted { ref attempts } => {
                write!(
                    f,
                    "job quarantined as poison after {} failed attempts",
                    attempts.len()
                )?;
                for attempt in attempts {
                    write!(f, "; {attempt}")?;
                }
                Ok(())
            }
            CompileError::FleetUnhealthy { retry_after } => write!(
                f,
                "every shard is quarantined; retry after {}ms",
                retry_after.as_millis()
            ),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CompileError::ProgramTooWide { program: 10, device: 9 };
        assert!(e.to_string().contains("10"));
        let e = CompileError::Unroutable { a: 1, b: 5 };
        assert!(e.to_string().contains("disconnected"));
        let e = CompileError::FrequencyBandExhausted { colors: 12 };
        assert!(e.to_string().contains("12"));
        let e = CompileError::NoShardFits { program: 16, max_shard: 9 };
        assert!(e.to_string().contains("16") && e.to_string().contains("9"));
        assert!(CompileError::Deadline.to_string().contains("deadline"));
        assert!(CompileError::Cancelled.to_string().contains("cancelled"));
        assert!(CompileError::QueueFull.to_string().contains("queue full"));
        let e = CompileError::Exhausted {
            attempts: vec![
                FailedAttempt {
                    shard: Some(2),
                    error: CompileError::Internal { message: "boom".into() },
                },
                FailedAttempt {
                    shard: None,
                    error: CompileError::NoShardFits { program: 4, max_shard: 0 },
                },
            ],
        };
        let text = e.to_string();
        assert!(text.contains("2 failed attempts"));
        assert!(text.contains("shard 2") && text.contains("boom"));
        assert!(text.contains("routing:"));
        let e = CompileError::FleetUnhealthy { retry_after: Duration::from_millis(250) };
        assert!(e.to_string().contains("250ms"));
    }

    #[test]
    fn only_internal_errors_are_transient() {
        assert!(CompileError::Internal { message: "panicked".into() }.is_transient());
        for terminal in [
            CompileError::ProgramTooWide { program: 10, device: 9 },
            CompileError::Unroutable { a: 0, b: 1 },
            CompileError::FrequencyBandExhausted { colors: 3 },
            CompileError::NoShardFits { program: 16, max_shard: 9 },
            CompileError::Deadline,
            CompileError::Cancelled,
            CompileError::QueueFull,
            CompileError::Exhausted { attempts: Vec::new() },
            CompileError::FleetUnhealthy { retry_after: Duration::from_secs(1) },
        ] {
            assert!(!terminal.is_transient(), "{terminal} must not retry");
        }
    }
}

//! Property-based tests for the graph substrate.

use fastsc_graph::crosstalk::CrosstalkGraph;
use fastsc_graph::{coloring, topology, Graph};
use proptest::prelude::*;

/// Strategy: a random simple graph as (n, edge set).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        let all_pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
        proptest::sample::subsequence(all_pairs.clone(), 0..=all_pairs.len())
            .prop_map(move |edges| Graph::with_edges(n, edges).expect("subsequence is unique"))
    })
}

proptest! {
    #[test]
    fn welsh_powell_always_proper(g in arb_graph(14)) {
        let c = coloring::welsh_powell(&g);
        prop_assert!(coloring::is_proper(&g, &c));
        prop_assert!(coloring::color_count(&c) <= g.max_degree() + 1);
    }

    #[test]
    fn natural_greedy_always_proper(g in arb_graph(14)) {
        let c = coloring::natural_greedy(&g);
        prop_assert!(coloring::is_proper(&g, &c));
    }

    #[test]
    fn bounded_coloring_partial_propriety(g in arb_graph(12), budget in 1usize..6) {
        let b = coloring::bounded_coloring(&g, budget);
        // Colored nodes never exceed the budget.
        for c in b.colors.iter().flatten() {
            prop_assert!(*c < budget);
        }
        // Partial coloring is proper.
        for (_, (u, v)) in g.edges() {
            if let (Some(cu), Some(cv)) = (b.colors[u], b.colors[v]) {
                prop_assert_ne!(cu, cv);
            }
        }
        // Deferred + colored = all nodes.
        let colored = b.colors.iter().filter(|c| c.is_some()).count();
        prop_assert_eq!(colored + b.deferred.len(), g.node_count());
    }

    #[test]
    fn line_graph_node_degree_identity(g in arb_graph(12)) {
        let lg = g.line_graph();
        prop_assert_eq!(lg.node_count(), g.edge_count());
        for (e, (u, v)) in g.edges() {
            prop_assert_eq!(lg.degree(e), g.degree(u) + g.degree(v) - 2);
        }
    }

    #[test]
    fn crosstalk_monotone_in_distance(g in arb_graph(10)) {
        let e0 = CrosstalkGraph::build(&g, 0).graph().edge_count();
        let e1 = CrosstalkGraph::build(&g, 1).graph().edge_count();
        let e2 = CrosstalkGraph::build(&g, 2).graph().edge_count();
        prop_assert!(e0 <= e1 && e1 <= e2);
    }

    #[test]
    fn crosstalk_edges_respect_definition(g in arb_graph(9)) {
        // Every crosstalk edge (d = 1) corresponds to couplings with
        // min endpoint distance <= 1, and vice versa.
        let x = CrosstalkGraph::build(&g, 1);
        for e1 in 0..x.coupling_count() {
            let (u1, v1) = x.coupling(e1);
            let du1 = g.bfs_distances(u1);
            let dv1 = g.bfs_distances(v1);
            for e2 in 0..x.coupling_count() {
                if e1 == e2 { continue; }
                let (u2, v2) = x.coupling(e2);
                let min_d = [du1[u2], du1[v2], dv1[u2], dv1[v2]]
                    .into_iter()
                    .flatten()
                    .min();
                let near = matches!(min_d, Some(d) if d <= 1);
                prop_assert_eq!(x.graph().has_edge(e1, e2), near,
                    "couplings {} and {}", e1, e2);
            }
        }
    }

    #[test]
    fn bfs_distance_symmetry(g in arb_graph(12), seed in any::<u64>()) {
        let n = g.node_count();
        let u = (seed as usize) % n;
        let v = (seed as usize / 7) % n;
        prop_assert_eq!(g.distance(u, v), g.distance(v, u));
    }

    #[test]
    fn shortest_path_is_valid_walk(g in arb_graph(12)) {
        for u in g.nodes() {
            for v in g.nodes() {
                if let Some(p) = g.shortest_path(u, v) {
                    prop_assert_eq!(*p.first().expect("non-empty"), u);
                    prop_assert_eq!(*p.last().expect("non-empty"), v);
                    for w in p.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                    prop_assert_eq!(Some((p.len() - 1) as u32), g.distance(u, v));
                }
            }
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_graph(14)) {
        let comps = g.connected_components();
        let mut seen = vec![false; g.node_count()];
        for comp in &comps {
            for &u in comp {
                prop_assert!(!seen[u], "node {} in two components", u);
                seen[u] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn two_coloring_agrees_with_odd_cycles(g in arb_graph(10)) {
        // If a 2-coloring exists it must be proper; if not, verify a
        // certificate exists by checking greedy uses >= 3 colors on some
        // component... (weak check: is_proper of the result when Some).
        if let Some(c) = coloring::two_coloring(&g) {
            prop_assert!(coloring::is_proper(&g, &c));
            prop_assert!(coloring::color_count(&c) <= 2);
        }
    }

    #[test]
    fn mesh_eight_coloring_proper_all_sizes(rows in 2usize..7, cols in 2usize..7) {
        let colors = fastsc_graph::crosstalk::mesh_eight_coloring(rows, cols);
        let x = CrosstalkGraph::build(&topology::grid(rows, cols), 1);
        prop_assert!(coloring::is_proper(x.graph(), &colors));
        prop_assert!(coloring::color_count(&colors) <= 8);
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(12), mask in any::<u64>()) {
        let nodes: Vec<usize> = g.nodes().filter(|&u| mask >> (u % 64) & 1 == 1).collect();
        let (sub, map) = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.node_count(), map.len());
        for (i, &oi) in map.iter().enumerate() {
            for (j, &oj) in map.iter().enumerate() {
                if i < j {
                    prop_assert_eq!(sub.has_edge(i, j), g.has_edge(oi, oj));
                }
            }
        }
    }
}

//! Vertex colorings used for frequency assignment.
//!
//! The compiler maps graph colors to frequencies: a coloring of the device
//! connectivity graph gives idle ("parking") frequencies, and a coloring of
//! the (active subgraph of the) crosstalk graph gives interaction
//! frequencies (paper §IV-C). Graph coloring is NP-complete, so as in the
//! paper we use the polynomial-time greedy approximation of Welsh & Powell
//! (*The Computer Journal*, 1967).
//!
//! [`bounded_coloring`] additionally supports the tunability study of the
//! paper's Fig. 11: when the number of available colors (frequency values)
//! is capped, vertices that would need an out-of-budget color are *deferred*
//! — the scheduler pushes the corresponding gates into a later cycle,
//! trading parallelism for spectral separation.

use crate::Graph;

/// A proper vertex coloring: `colors[v]` is the color of node `v`.
pub type Coloring = Vec<usize>;

/// Greedy coloring visiting nodes in the given order; each node receives the
/// smallest color not used by its already-colored neighbors.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..g.node_count()`.
pub fn greedy_coloring(g: &Graph, order: &[usize]) -> Coloring {
    assert_eq!(order.len(), g.node_count(), "order must cover every node exactly once");
    let mut seen = vec![false; g.node_count()];
    for &v in order {
        assert!(!seen[v], "node {v} repeated in coloring order");
        seen[v] = true;
    }

    let mut colors: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut forbidden = vec![usize::MAX; g.node_count().max(1)]; // stamp buffer
    for (stamp, &v) in order.iter().enumerate() {
        for &u in g.neighbors(v) {
            if let Some(c) = colors[u] {
                forbidden[c] = stamp;
            }
        }
        let c = (0..).find(|&c| forbidden[c] != stamp).expect("some color is always free");
        colors[v] = Some(c);
    }
    colors.into_iter().map(|c| c.expect("all nodes visited")).collect()
}

/// Welsh–Powell greedy coloring: nodes are visited in order of decreasing
/// degree (ties broken by index), bounding the number of colors by
/// `max_degree + 1`.
///
/// # Example
///
/// ```
/// use fastsc_graph::{topology, coloring};
/// let g = topology::complete(4);
/// let c = coloring::welsh_powell(&g);
/// assert_eq!(coloring::color_count(&c), 4);
/// ```
pub fn welsh_powell(g: &Graph) -> Coloring {
    let mut order: Vec<usize> = g.nodes().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    greedy_coloring(g, &order)
}

/// Greedy coloring in natural node order `0, 1, 2, ...`.
pub fn natural_greedy(g: &Graph) -> Coloring {
    let order: Vec<usize> = g.nodes().collect();
    greedy_coloring(g, &order)
}

/// Result of a color-budgeted coloring attempt (see [`bounded_coloring`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedColoring {
    /// `Some(c)` with `c < max_colors` for colored nodes, `None` for
    /// deferred nodes.
    pub colors: Vec<Option<usize>>,
    /// Nodes that could not be colored within the budget, in visit order.
    pub deferred: Vec<usize>,
}

impl BoundedColoring {
    /// Number of distinct colors actually used.
    pub fn color_count(&self) -> usize {
        self.colors.iter().flatten().copied().max().map_or(0, |m| m + 1)
    }
}

/// Welsh–Powell coloring with at most `max_colors` colors; nodes that cannot
/// be colored within the budget are deferred instead.
///
/// Deferred nodes impose no constraints on later nodes (the corresponding
/// gates will execute in a different cycle).
///
/// # Panics
///
/// Panics if `max_colors == 0`.
pub fn bounded_coloring(g: &Graph, max_colors: usize) -> BoundedColoring {
    assert!(max_colors > 0, "at least one color is required");
    let mut order: Vec<usize> = g.nodes().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));

    let mut colors: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut deferred = Vec::new();
    for &v in &order {
        let mut used = vec![false; max_colors];
        for &u in g.neighbors(v) {
            if let Some(c) = colors[u] {
                used[c] = true;
            }
        }
        match used.iter().position(|&taken| !taken) {
            Some(c) => colors[v] = Some(c),
            None => deferred.push(v),
        }
    }
    BoundedColoring { colors, deferred }
}

/// A 2-coloring of a bipartite graph via BFS, or `None` if an odd cycle
/// exists.
///
/// The paper's parking-frequency assignment relies on the 2-D mesh being
/// bipartite: a checkerboard of two idle frequencies keeps every pair of
/// coupled idle qubits detuned (§IV-C-1).
pub fn two_coloring(g: &Graph) -> Option<Coloring> {
    let mut colors: Vec<Option<usize>> = vec![None; g.node_count()];
    for start in g.nodes() {
        if colors[start].is_some() {
            continue;
        }
        colors[start] = Some(0);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let cu = colors[u].expect("queued nodes are colored");
            for &v in g.neighbors(u) {
                match colors[v] {
                    None => {
                        colors[v] = Some(1 - cu);
                        queue.push_back(v);
                    }
                    Some(cv) if cv == cu => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(colors.into_iter().map(|c| c.expect("all components visited")).collect())
}

/// Whether `colors` assigns distinct colors to every pair of adjacent nodes.
///
/// # Panics
///
/// Panics if `colors.len() != g.node_count()`.
pub fn is_proper(g: &Graph, colors: &[usize]) -> bool {
    assert_eq!(colors.len(), g.node_count(), "one color per node required");
    g.edges().all(|(_, (u, v))| colors[u] != colors[v])
}

/// The number of distinct colors in a coloring (`max + 1` for non-empty).
pub fn color_count(colors: &[usize]) -> usize {
    colors.iter().copied().max().map_or(0, |m| m + 1)
}

/// How many nodes use each color: `histogram(c)[k]` is the multiplicity of
/// color `k`.
///
/// The compiler orders frequencies by color multiplicity: colors used by
/// more simultaneous gates receive higher interaction frequencies because
/// higher ω means faster gates (paper §V-B3).
pub fn histogram(colors: &[usize]) -> Vec<usize> {
    let mut h = vec![0usize; color_count(colors)];
    for &c in colors {
        h[c] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn greedy_on_triangle_uses_three_colors() {
        let g = topology::complete(3);
        let c = natural_greedy(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(color_count(&c), 3);
    }

    #[test]
    fn greedy_respects_visit_order() {
        let g = topology::linear(3);
        let c = greedy_coloring(&g, &[1, 0, 2]);
        assert_eq!(c[1], 0);
        assert_eq!(c[0], 1);
        assert_eq!(c[2], 1);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn greedy_rejects_short_order() {
        let g = topology::linear(3);
        let _ = greedy_coloring(&g, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "repeated in coloring order")]
    fn greedy_rejects_duplicate_order() {
        let g = topology::linear(3);
        let _ = greedy_coloring(&g, &[0, 1, 1]);
    }

    #[test]
    fn welsh_powell_is_proper_and_bounded() {
        for g in [topology::grid(4, 4), topology::complete(5), topology::express_2d(4, 4, 2)] {
            let c = welsh_powell(&g);
            assert!(is_proper(&g, &c));
            assert!(color_count(&c) <= g.max_degree() + 1);
        }
    }

    #[test]
    fn welsh_powell_two_colors_on_even_cycle() {
        let g = topology::ring(6);
        let c = welsh_powell(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(color_count(&c), 2);
    }

    #[test]
    fn two_coloring_on_mesh() {
        let g = topology::grid(5, 5);
        let c = two_coloring(&g).expect("mesh is bipartite");
        assert!(is_proper(&g, &c));
        assert_eq!(color_count(&c), 2);
        // Checkerboard: (r+c) parity determines the class.
        for u in g.nodes() {
            let (r, col) = topology::grid_coord(u, 5);
            assert_eq!(c[u], (r + col) % 2);
        }
    }

    #[test]
    fn two_coloring_rejects_odd_cycle() {
        assert!(two_coloring(&topology::ring(5)).is_none());
        assert!(two_coloring(&topology::complete(3)).is_none());
    }

    #[test]
    fn two_coloring_handles_disconnected_graphs() {
        let g = Graph::with_edges(4, [(0, 1)]).expect("valid");
        let c = two_coloring(&g).expect("forest is bipartite");
        assert!(is_proper(&g, &c));
    }

    #[test]
    fn bounded_coloring_defers_when_budget_exceeded() {
        let g = topology::complete(4); // needs 4 colors
        let b = bounded_coloring(&g, 2);
        assert_eq!(b.deferred.len(), 2);
        assert_eq!(b.color_count(), 2);
        // The colored part is a proper partial coloring.
        for (_, (u, v)) in g.edges() {
            if let (Some(cu), Some(cv)) = (b.colors[u], b.colors[v]) {
                assert_ne!(cu, cv);
            }
        }
    }

    #[test]
    fn bounded_coloring_with_enough_budget_defers_nothing() {
        let g = topology::grid(3, 3);
        let b = bounded_coloring(&g, g.max_degree() + 1);
        assert!(b.deferred.is_empty());
        let full: Vec<usize> = b.colors.iter().map(|c| c.expect("no deferrals")).collect();
        assert!(is_proper(&g, &full));
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn bounded_coloring_rejects_zero_budget() {
        let _ = bounded_coloring(&topology::linear(2), 0);
    }

    #[test]
    fn histogram_counts_colors() {
        assert_eq!(histogram(&[0, 1, 0, 2, 0]), vec![3, 1, 1]);
        assert_eq!(histogram(&[]), Vec::<usize>::new());
    }

    #[test]
    fn single_color_budget_on_matching() {
        // A perfect matching's crosstalk-free layer can be 1-colored.
        let g = Graph::with_edges(4, []).expect("empty");
        let b = bounded_coloring(&g, 1);
        assert!(b.deferred.is_empty());
        assert_eq!(b.color_count(), 1);
    }
}

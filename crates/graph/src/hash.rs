//! A stable 64-bit structural hasher.
//!
//! The compile-service result cache keys whole schedules by
//! `(device seed, program hash, strategy, config hash)`, so every
//! component hash must be **stable**: the same value in every process,
//! on every platform, across Rust releases. The standard-library
//! [`std::hash::Hasher`] machinery explicitly reserves the right to
//! change between releases, so this module pins the exact algorithm
//! instead: FNV-1a with the canonical 64-bit offset basis and prime,
//! folding every primitive through a fixed little-endian byte encoding.
//!
//! It lives here, in the workspace's bottom crate, so graphs
//! ([`Graph::structural_hash`](crate::Graph::structural_hash)), circuits
//! (`fastsc_ir::Circuit::structural_hash`), configs, and device
//! fingerprints all share **one** pinned implementation (`fastsc_ir::
//! hash` re-exports it).
//!
//! FNV-1a is order-sensitive (`ab` and `ba` hash differently), which is
//! exactly what a *structural* hash needs — reordering gates or
//! relabeling qubits must change the hash (the IR property suite asserts
//! this for random circuits).

/// Incremental FNV-1a (64-bit) over a fixed byte encoding.
///
/// # Example
///
/// ```
/// use fastsc_graph::hash::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_u64(7);
/// let mut b = StableHasher::new();
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Starts a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte into the state.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u64` (little-endian) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` into the state, widened to `u64` so 32- and 64-bit
    /// targets agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` into the state via its IEEE-754 bit pattern, so
    /// hashing is exact (no epsilon) and `-0.0 != 0.0`.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn matches_reference_fnv1a_vectors() {
        // Canonical FNV-1a test vectors (from the FNV reference code).
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn order_sensitive() {
        let mut ab = StableHasher::new();
        ab.write_u8(1);
        ab.write_u8(2);
        let mut ba = StableHasher::new();
        ba.write_u8(2);
        ba.write_u8(1);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn float_hashing_is_bit_exact() {
        let mut pos = StableHasher::new();
        pos.write_f64(0.0);
        let mut neg = StableHasher::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish(), "-0.0 and 0.0 differ as bits");
        let mut a = StableHasher::new();
        a.write_f64(1.5);
        let mut b = StableHasher::new();
        b.write_f64(1.5);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn usize_widens_to_u64() {
        let mut a = StableHasher::new();
        a.write_usize(300);
        let mut b = StableHasher::new();
        b.write_u64(300);
        assert_eq!(a.finish(), b.finish());
    }
}

//! Graph substrate for FastSC.
//!
//! The frequency-aware compilation algorithm of Ding et al. (MICRO 2020) is
//! built on two graph-theoretic objects:
//!
//! * the **connectivity graph** `Gc` of a quantum device, where every vertex
//!   is a qubit and every edge is a physical coupling (a capacitor between
//!   two frequency-tunable transmons), and
//! * the **crosstalk graph** `Gx`, the line graph of `Gc` augmented with an
//!   edge between any two couplings that lie within distance *d* of each
//!   other (paper Algorithm 2). A proper vertex coloring of `Gx` yields a
//!   set of mutually non-colliding interaction frequencies.
//!
//! The paper's reference implementation used Python NetworkX; this crate is
//! a from-scratch replacement providing exactly the operations the compiler
//! needs: an undirected simple [`Graph`], standard topology builders
//! ([`topology`]), line-graph and distance-*d* crosstalk-graph construction
//! ([`crosstalk`]), and greedy / Welsh–Powell / color-bounded vertex coloring
//! ([`coloring`]).
//!
//! # Example
//!
//! ```
//! use fastsc_graph::{topology, crosstalk::CrosstalkGraph, coloring};
//!
//! // 5x5 mesh from the paper's Fig. 7.
//! let mesh = topology::grid(5, 5);
//! assert_eq!(mesh.node_count(), 25);
//! assert_eq!(mesh.edge_count(), 40);
//!
//! // Idle frequencies: the mesh is bipartite, so 2 parking values suffice.
//! let idle = coloring::two_coloring(&mesh).expect("meshes are bipartite");
//! assert!(coloring::is_proper(&mesh, &idle));
//!
//! // Interaction frequencies: color the distance-1 crosstalk graph.
//! let xtalk = CrosstalkGraph::build(&mesh, 1);
//! let colors = coloring::welsh_powell(xtalk.graph());
//! assert!(coloring::is_proper(xtalk.graph(), &colors));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod crosstalk;
mod error;
mod graph;
pub mod hash;
pub mod regions;
pub mod topology;

pub use error::GraphError;
pub use graph::Graph;

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::GraphError;

/// An undirected simple graph with `usize` node indices and indexed edges.
///
/// Nodes are identified by `0..node_count()`; edges by `0..edge_count()` in
/// insertion order. Edge endpoints are stored in normalized `(min, max)`
/// order. The structure is append-only (nodes and edges can be added but not
/// removed), which matches how device connectivity and crosstalk graphs are
/// used by the compiler and keeps all indices stable.
///
/// # Example
///
/// ```
/// use fastsc_graph::Graph;
///
/// let mut g = Graph::new(3);
/// let e0 = g.add_edge(0, 1)?;
/// let e1 = g.add_edge(1, 2)?;
/// assert_eq!(g.endpoints(e0), (0, 1));
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.edge_between(2, 1), Some(e1));
/// # Ok::<(), fastsc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
    edge_index: HashMap<(usize, usize), usize>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph { adjacency: vec![Vec::new(); n], edges: Vec::new(), edge_index: HashMap::new() }
    }

    /// Creates a graph with `n` nodes and the given edges.
    ///
    /// # Errors
    ///
    /// Returns an error if any edge is a self-loop, a duplicate, or refers
    /// to a node `>= n`.
    pub fn with_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has neither nodes nor edges.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds a new isolated node and returns its index.
    pub fn add_node(&mut self) -> usize {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Adds an undirected edge between `u` and `v` and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`,
    /// [`GraphError::NodeOutOfRange`] if either endpoint does not exist, and
    /// [`GraphError::DuplicateEdge`] if the edge is already present.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<usize, GraphError> {
        let n = self.node_count();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, node_count: n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, node_count: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let key = (u.min(v), u.max(v));
        if self.edge_index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        let id = self.edges.len();
        self.edges.push(key);
        self.edge_index.insert(key, id);
        self.adjacency[u].push(v);
        self.adjacency[v].push(u);
        Ok(id)
    }

    /// Whether an edge between `u` and `v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_index.contains_key(&(u.min(v), u.max(v)))
    }

    /// The index of the edge between `u` and `v`, if present.
    pub fn edge_between(&self, u: usize, v: usize) -> Option<usize> {
        self.edge_index.get(&(u.min(v), u.max(v))).copied()
    }

    /// The `(min, max)` endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= edge_count()`.
    pub fn endpoints(&self, e: usize) -> (usize, usize) {
        self.edges[e]
    }

    /// Neighbors of `u`, in edge-insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u >= node_count()`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adjacency[u]
    }

    /// Degree (number of incident edges) of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= node_count()`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// The maximum degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Iterator over `(edge_id, (u, v))` pairs in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, (usize, usize))> + '_ {
        self.edges.iter().copied().enumerate()
    }

    /// Iterator over node indices `0..node_count()`.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.node_count()
    }

    /// A stable 64-bit structural hash: [`StableHasher`]
    /// (crate::hash::StableHasher) (pinned FNV-1a/64) over the node count
    /// and the edge list in insertion order (endpoints normalized, as
    /// stored).
    ///
    /// Two graphs hash equal exactly when they are [`PartialEq`]-equal up
    /// to adjacency-list ordering — same nodes, same edges, same edge
    /// indices. The value is reproducible across processes and Rust
    /// releases; the compile service folds it into device-level cache
    /// keys so two devices can only share cached schedules when their
    /// connectivity is identical.
    pub fn structural_hash(&self) -> u64 {
        let mut h = crate::hash::StableHasher::new();
        h.write_usize(self.node_count());
        h.write_usize(self.edges.len());
        for &(u, v) in &self.edges {
            h.write_usize(u);
            h.write_usize(v);
        }
        h.finish()
    }

    /// Edge indices incident to node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= node_count()`.
    pub fn incident_edges(&self, u: usize) -> Vec<usize> {
        self.adjacency[u]
            .iter()
            .map(|&v| self.edge_between(u, v).expect("adjacency implies an edge"))
            .collect()
    }

    /// Breadth-first distances (in hops) from `src` to every node.
    ///
    /// Unreachable nodes map to `None`.
    ///
    /// # Panics
    ///
    /// Panics if `src >= node_count()`.
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<u32>> {
        assert!(src < self.node_count(), "bfs source {src} out of range");
        let mut dist = vec![None; self.node_count()];
        dist[src] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("dequeued nodes have distances");
            for &v in &self.adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Shortest-path distance in hops between `u` and `v`, if connected.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, u: usize, v: usize) -> Option<u32> {
        assert!(v < self.node_count(), "node {v} out of range");
        self.bfs_distances(u)[v]
    }

    /// A shortest path (as a node sequence, inclusive of both ends) between
    /// `u` and `v`, if one exists.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn shortest_path(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        assert!(u < self.node_count(), "node {u} out of range");
        assert!(v < self.node_count(), "node {v} out of range");
        let mut parent: Vec<Option<usize>> = vec![None; self.node_count()];
        let mut seen = vec![false; self.node_count()];
        seen[u] = true;
        let mut queue = VecDeque::from([u]);
        while let Some(x) = queue.pop_front() {
            if x == v {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &y in &self.adjacency[x] {
                if !seen[y] {
                    seen[y] = true;
                    parent[y] = Some(x);
                    queue.push_back(y);
                }
            }
        }
        None
    }

    /// Whether every node is reachable from every other node.
    ///
    /// The empty graph and single-node graphs are connected.
    pub fn is_connected(&self) -> bool {
        match self.node_count() {
            0 | 1 => true,
            _ => self.bfs_distances(0).iter().all(Option::is_some),
        }
    }

    /// Connected components, each a sorted list of node indices.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut comp = vec![usize::MAX; self.node_count()];
        let mut components = Vec::new();
        for start in self.nodes() {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut members = vec![start];
            comp[start] = id;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adjacency[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = id;
                        members.push(v);
                        queue.push_back(v);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components
    }

    /// The line graph: one node per edge of `self`; two line-graph nodes are
    /// adjacent when the corresponding edges share an endpoint.
    ///
    /// Line-graph node `i` corresponds to edge `i` of `self`.
    pub fn line_graph(&self) -> Graph {
        let mut lg = Graph::new(self.edge_count());
        for u in self.nodes() {
            let incident = self.incident_edges(u);
            for (i, &e1) in incident.iter().enumerate() {
                for &e2 in &incident[i + 1..] {
                    // Two edges may share both endpoints only in a multigraph;
                    // in a simple graph the pair is unique, but two edges can
                    // still meet at both `u` and `v` via different vertices,
                    // so tolerate duplicates.
                    let _ = lg.add_edge(e1, e2);
                }
            }
        }
        lg
    }

    /// The subgraph induced by `nodes`, together with the mapping from new
    /// node index to original node index.
    ///
    /// Duplicate entries in `nodes` are ignored after the first occurrence.
    /// Induced edges are added in this graph's edge-id order, so the
    /// subgraph's edge ids enumerate the induced edges as a subsequence
    /// of the parent's.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `nodes` is out of range.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        const ABSENT: usize = usize::MAX;
        let mut to_new = vec![ABSENT; self.node_count()];
        let mut to_old = Vec::new();
        for &u in nodes {
            assert!(u < self.node_count(), "node {u} out of range");
            if to_new[u] == ABSENT {
                to_new[u] = to_old.len();
                to_old.push(u);
            }
        }
        let mut sub = Graph::new(to_old.len());
        for (_, (u, v)) in self.edges() {
            if to_new[u] != ABSENT && to_new[v] != ABSENT {
                sub.add_edge(to_new[u], to_new[v]).expect("induced edges are unique");
            }
        }
        (sub, to_old)
    }

    /// Renders the graph in Graphviz DOT format (undirected).
    pub fn to_dot(&self, name: &str) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph {name} {{");
        for u in self.nodes() {
            let _ = writeln!(out, "  n{u};");
        }
        for (_, (u, v)) in self.edges() {
            let _ = writeln!(out, "  n{u} -- n{v};");
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(|V|={}, |E|={})", self.node_count(), self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::with_edges(3, [(0, 1), (1, 2)]).expect("valid path")
    }

    #[test]
    fn new_graph_has_isolated_nodes() {
        let g = Graph::new(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_empty());
        assert!(Graph::new(0).is_empty());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_edge_normalizes_endpoints() {
        let mut g = Graph::new(3);
        let e = g.add_edge(2, 0).expect("valid edge");
        assert_eq!(g.endpoints(e), (0, 2));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.edge_between(0, 2), Some(e));
    }

    #[test]
    fn structural_hash_distinguishes_graphs() {
        assert_eq!(path3().structural_hash(), path3().structural_hash());
        // Different edge set, same node count.
        let other = Graph::with_edges(3, [(0, 1), (0, 2)]).expect("valid");
        assert_ne!(path3().structural_hash(), other.structural_hash());
        // Same edges, different node count.
        let wider = Graph::with_edges(4, [(0, 1), (1, 2)]).expect("valid");
        assert_ne!(path3().structural_hash(), wider.structural_hash());
        // Endpoint normalization makes (2,0) and (0,2) the same edge.
        let normalized = Graph::with_edges(3, [(1, 0), (2, 1)]).expect("valid");
        assert_eq!(path3().structural_hash(), normalized.structural_hash());
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn add_edge_rejects_duplicate_in_either_orientation() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1).expect("first insertion");
        assert_eq!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
    }

    #[test]
    fn add_edge_rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, node_count: 2 })
        );
        assert_eq!(
            g.add_edge(7, 0),
            Err(GraphError::NodeOutOfRange { node: 7, node_count: 2 })
        );
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path3();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn incident_edges_match_adjacency() {
        let g = path3();
        assert_eq!(g.incident_edges(1), vec![0, 1]);
        assert_eq!(g.incident_edges(0), vec![0]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path3();
        assert_eq!(g.bfs_distances(0), vec![Some(0), Some(1), Some(2)]);
        assert_eq!(g.distance(0, 2), Some(2));
    }

    #[test]
    fn bfs_reports_unreachable() {
        let g = Graph::with_edges(4, [(0, 1)]).expect("valid");
        let d = g.bfs_distances(0);
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None);
        assert!(!g.is_connected());
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = Graph::with_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).expect("cycle");
        let p = g.shortest_path(0, 3).expect("connected");
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        assert_eq!(p.len(), 3); // 0 - 4 - 3
        assert_eq!(g.shortest_path(0, 0), Some(vec![0]));
    }

    #[test]
    fn shortest_path_none_when_disconnected() {
        let g = Graph::new(2);
        assert_eq!(g.shortest_path(0, 1), None);
    }

    #[test]
    fn connected_components_partition_nodes() {
        let g = Graph::with_edges(5, [(0, 1), (3, 4)]).expect("valid");
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn line_graph_of_path_is_path() {
        // P3 has 2 edges sharing node 1 => line graph is a single edge.
        let lg = path3().line_graph();
        assert_eq!(lg.node_count(), 2);
        assert_eq!(lg.edge_count(), 1);
        assert!(lg.has_edge(0, 1));
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let star = Graph::with_edges(4, [(0, 1), (0, 2), (0, 3)]).expect("star");
        let lg = star.line_graph();
        assert_eq!(lg.node_count(), 3);
        assert_eq!(lg.edge_count(), 3); // K3
    }

    #[test]
    fn line_graph_degree_identity() {
        // deg_L(e=(u,v)) = deg(u) + deg(v) - 2 for simple graphs.
        let g = Graph::with_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (2, 5)])
            .expect("valid");
        let lg = g.line_graph();
        for (e, (u, v)) in g.edges() {
            assert_eq!(lg.degree(e), g.degree(u) + g.degree(v) - 2, "edge {e}");
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::with_edges(4, [(0, 1), (1, 2), (2, 3)]).expect("valid");
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(map, vec![1, 2, 3]);
        // New indices follow the order of `nodes`.
        assert!(sub.has_edge(0, 1)); // old (1,2)
        assert!(sub.has_edge(1, 2)); // old (2,3)
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = path3();
        let (sub, map) = g.induced_subgraph(&[2, 2, 1]);
        assert_eq!(map, vec![2, 1]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let dot = path3().to_dot("p3");
        assert!(dot.contains("graph p3"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("n1 -- n2"));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(path3().to_string(), "Graph(|V|=3, |E|=2)");
    }
}

//! Device-topology builders.
//!
//! The paper evaluates its algorithm on a family of connectivity graphs of
//! increasing density (Fig. 13): a 1-D linear chain, 1-D *express cubes*
//! `1EX-k` (a chain with express channels inserted every `k` nodes, after
//! Dally, *IEEE ToC* 1991), the 2-D grid, and 2-D express cubes `2EX-k`.
//! This module builds all of them plus the Erdős–Rényi random graphs used by
//! the QAOA workload.

use crate::Graph;

/// A 1-D chain of `n` nodes: `0 - 1 - ... - n-1`.
///
/// # Example
///
/// ```
/// let g = fastsc_graph::topology::linear(4);
/// assert_eq!(g.edge_count(), 3);
/// ```
pub fn linear(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i).expect("chain edges are unique");
    }
    g
}

/// A cycle of `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (smaller rings are not simple graphs).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes, got {n}");
    let mut g = linear(n);
    g.add_edge(n - 1, 0).expect("closing edge is unique");
    g
}

/// A complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(u, v).expect("complete edges are unique");
        }
    }
    g
}

/// A `rows x cols` 2-D mesh with nearest-neighbor connectivity.
///
/// Node `(r, c)` has index `r * cols + c`. This is the baseline topology of
/// the paper (frequency-tunable transmons with capacitive nearest-neighbor
/// coupling).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                g.add_edge(u, u + 1).expect("grid edges are unique");
            }
            if r + 1 < rows {
                g.add_edge(u, u + cols).expect("grid edges are unique");
            }
        }
    }
    g
}

/// The node index of grid coordinate `(r, c)` on a `cols`-wide mesh.
pub fn grid_index(r: usize, c: usize, cols: usize) -> usize {
    r * cols + c
}

/// The `(row, col)` coordinate of grid node `u` on a `cols`-wide mesh.
pub fn grid_coord(u: usize, cols: usize) -> (usize, usize) {
    (u / cols, u % cols)
}

/// A 1-D express cube `1EX-k`: a linear chain of `n` nodes augmented with
/// express channels `i -- i + k` for every `i` divisible by `k`.
///
/// Smaller `k` means denser connectivity; `1EX-2` inserts an express link at
/// every other node. Express links of length 1 would duplicate chain edges
/// and are skipped.
///
/// # Panics
///
/// Panics if `k < 2` (a length-1 express channel is just the local channel).
pub fn express_1d(n: usize, k: usize) -> Graph {
    assert!(k >= 2, "express interval k must be >= 2, got {k}");
    let mut g = linear(n);
    let mut i = 0;
    while i + k < n {
        g.add_edge(i, i + k).expect("express edges are unique for k >= 2");
        i += k;
    }
    g
}

/// A 2-D express cube `2EX-k`: a `rows x cols` grid augmented with express
/// channels every `k` nodes along both rows and columns.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn express_2d(rows: usize, cols: usize, k: usize) -> Graph {
    assert!(k >= 2, "express interval k must be >= 2, got {k}");
    let mut g = grid(rows, cols);
    for r in 0..rows {
        let mut c = 0;
        while c + k < cols {
            g.add_edge(grid_index(r, c, cols), grid_index(r, c + k, cols))
                .expect("row express edges are unique for k >= 2");
            c += k;
        }
    }
    for c in 0..cols {
        let mut r = 0;
        while r + k < rows {
            g.add_edge(grid_index(r, c, cols), grid_index(r + k, c, cols))
                .expect("column express edges are unique for k >= 2");
            r += k;
        }
    }
    g
}

/// A heavy-hex lattice of `rows x cols` unit cells (IBM's reduced-degree
/// layout, §III "connectivity reduction").
///
/// Each hexagonal cell has corner qubits of degree <= 3 joined by edge
/// qubits of degree 2. Concretely this builds the standard brick-wall
/// embedding: full horizontal rows of `2 * cols + 1` qubits connected as
/// chains, plus one bridge qubit per cell column between consecutive rows,
/// attached at alternating offsets.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn heavy_hex(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "heavy-hex needs at least one cell");
    let row_len = 2 * cols + 1;
    let n_rows = rows + 1;
    let mut g = Graph::new(n_rows * row_len);
    // Horizontal chains.
    for r in 0..n_rows {
        for c in 0..row_len - 1 {
            g.add_edge(r * row_len + c, r * row_len + c + 1).expect("chain edges are unique");
        }
    }
    // Bridge qubits between consecutive rows, alternating offsets so the
    // cells tile like bricks.
    for r in 0..rows {
        let offset = if r % 2 == 0 { 0 } else { 2 };
        let mut c = offset;
        while c < row_len {
            let top = r * row_len + c;
            let bottom = (r + 1) * row_len + c;
            let bridge = g.add_node();
            g.add_edge(top, bridge).expect("bridge edges are unique");
            g.add_edge(bridge, bottom).expect("bridge edges are unique");
            c += 4;
        }
    }
    g
}

/// An Erdős–Rényi `G(n, p)` random graph: each of the `n(n-1)/2` candidate
/// edges is present independently with probability `p`.
///
/// Used as the MAX-CUT problem instance for the QAOA workload (Table II).
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]` or is NaN.
pub fn erdos_renyi<R: rand::Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1], got {p}");
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v).expect("candidate edges are unique");
            }
        }
    }
    g
}

/// Named connectivity families from the paper's Fig. 13, ordered from the
/// sparsest (`Linear`) to the densest (`Express2D { k: 2 }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// 1-D chain.
    Linear,
    /// 1-D express cube with express interval `k` (`1EX-k`).
    Express1D {
        /// Express channel interval.
        k: usize,
    },
    /// 2-D nearest-neighbor mesh.
    Grid,
    /// 2-D express cube with express interval `k` (`2EX-k`).
    Express2D {
        /// Express channel interval.
        k: usize,
    },
}

impl Topology {
    /// Builds the topology for `n` qubits.
    ///
    /// For the 2-D families, `n` must be a perfect square and the mesh is
    /// `sqrt(n) x sqrt(n)`; for the 1-D families any `n` is accepted.
    ///
    /// # Panics
    ///
    /// Panics if a 2-D family is requested with non-square `n`.
    pub fn build(self, n: usize) -> Graph {
        match self {
            Topology::Linear => linear(n),
            Topology::Express1D { k } => express_1d(n, k),
            Topology::Grid => {
                let side = integer_sqrt(n);
                grid(side, side)
            }
            Topology::Express2D { k } => {
                let side = integer_sqrt(n);
                express_2d(side, side, k)
            }
        }
    }

    /// The Fig. 13 x-axis sweep, sparsest to densest:
    /// linear, 1EX-5..1EX-2, grid, 2EX-5..2EX-2.
    pub fn fig13_sweep() -> Vec<Topology> {
        let mut v = vec![Topology::Linear];
        for k in (2..=5).rev() {
            v.push(Topology::Express1D { k });
        }
        v.push(Topology::Grid);
        for k in (2..=5).rev() {
            v.push(Topology::Express2D { k });
        }
        v
    }

    /// Short label matching the paper's axis ticks (e.g. `"1EX3"`).
    pub fn label(self) -> String {
        match self {
            Topology::Linear => "linear".to_owned(),
            Topology::Express1D { k } => format!("1EX{k}"),
            Topology::Grid => "grid".to_owned(),
            Topology::Express2D { k } => format!("2EX{k}"),
        }
    }
}

fn integer_sqrt(n: usize) -> usize {
    let side = (n as f64).sqrt().round() as usize;
    assert_eq!(side * side, n, "2-D topologies need a square qubit count, got {n}");
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_counts() {
        let g = linear(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
        assert_eq!(linear(0).node_count(), 0);
        assert_eq!(linear(1).edge_count(), 0);
    }

    #[test]
    fn ring_closes_the_chain() {
        let g = ring(4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(3, 0));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn ring_rejects_tiny() {
        let _ = ring(2);
    }

    #[test]
    fn complete_counts() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid_counts_match_formula() {
        // |E| = rows*(cols-1) + cols*(rows-1)
        for (r, c) in [(2, 2), (3, 3), (4, 5), (5, 5)] {
            let g = grid(r, c);
            assert_eq!(g.node_count(), r * c);
            assert_eq!(g.edge_count(), r * (c - 1) + c * (r - 1));
            assert!(g.is_connected());
        }
    }

    #[test]
    fn grid_adjacency_is_manhattan_neighbors() {
        let g = grid(3, 3);
        let center = grid_index(1, 1, 3);
        let mut n: Vec<usize> = g.neighbors(center).to_vec();
        n.sort_unstable();
        assert_eq!(n, vec![1, 3, 5, 7]);
    }

    #[test]
    fn grid_coord_roundtrip() {
        for u in 0..12 {
            let (r, c) = grid_coord(u, 4);
            assert_eq!(grid_index(r, c, 4), u);
        }
    }

    #[test]
    fn express_1d_adds_express_channels() {
        let g = express_1d(9, 3);
        // chain: 8 edges; express: (0,3), (3,6) => 10 edges.
        assert_eq!(g.edge_count(), 10);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 6));
        // The final express channel (6, 9) falls off the chain and must
        // not be clamped down to the last node instead.
        assert!(!g.has_edge(6, 8), "clamped express channel (6, 8) must not exist");
    }

    #[test]
    fn express_1d_k2_is_denser_than_k5() {
        assert!(express_1d(25, 2).edge_count() > express_1d(25, 5).edge_count());
    }

    #[test]
    #[should_panic(expected = "k must be >= 2")]
    fn express_1d_rejects_k1() {
        let _ = express_1d(5, 1);
    }

    #[test]
    fn express_2d_contains_grid() {
        let e = express_2d(5, 5, 2);
        let g = grid(5, 5);
        for (_, (u, v)) in g.edges() {
            assert!(e.has_edge(u, v), "missing grid edge ({u},{v})");
        }
        assert!(e.edge_count() > g.edge_count());
        assert!(e.has_edge(grid_index(0, 0, 5), grid_index(0, 2, 5)));
        assert!(e.has_edge(grid_index(0, 0, 5), grid_index(2, 0, 5)));
    }

    #[test]
    fn heavy_hex_degree_bounded_by_three() {
        for (r, c) in [(1, 1), (2, 2), (3, 4)] {
            let g = heavy_hex(r, c);
            assert!(g.is_connected(), "{r}x{c} heavy-hex disconnected");
            assert!(g.max_degree() <= 3, "{r}x{c}: degree {}", g.max_degree());
        }
    }

    #[test]
    fn heavy_hex_sparser_than_grid() {
        let hh = heavy_hex(3, 3);
        let n = hh.node_count();
        // Average degree strictly below the mesh's (~3.3 for 5x5+).
        let avg = 2.0 * hh.edge_count() as f64 / n as f64;
        assert!(avg < 2.6, "avg degree {avg}");
    }

    #[test]
    fn heavy_hex_bridges_have_degree_two() {
        let g = heavy_hex(2, 2);
        let row_len = 2 * 2 + 1;
        let chain_nodes = (2 + 1) * row_len;
        for bridge in chain_nodes..g.node_count() {
            assert_eq!(g.degree(bridge), 2, "bridge {bridge}");
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(erdos_renyi(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let g1 = erdos_renyi(10, 0.5, &mut StdRng::seed_from_u64(42));
        let g2 = erdos_renyi(10, 0.5, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }

    #[test]
    fn topology_sweep_matches_fig13_axis() {
        let labels: Vec<String> =
            Topology::fig13_sweep().into_iter().map(Topology::label).collect();
        assert_eq!(
            labels,
            vec![
                "linear", "1EX5", "1EX4", "1EX3", "1EX2", "grid", "2EX5", "2EX4", "2EX3",
                "2EX2"
            ]
        );
    }

    #[test]
    fn topology_build_densities_increase() {
        let sweep = Topology::fig13_sweep();
        let counts: Vec<usize> = sweep.iter().map(|t| t.build(16).edge_count()).collect();
        // Not strictly monotone between families, but the 2-D half must be
        // denser than the 1-D half, and k=2 denser than k=5 within a family.
        assert!(counts[5] > counts[0], "grid denser than linear");
        assert!(counts[4] > counts[1], "1EX2 denser than 1EX5");
        assert!(counts[9] > counts[6], "2EX2 denser than 2EX5");
    }

    #[test]
    #[should_panic(expected = "square qubit count")]
    fn topology_build_rejects_non_square_grid() {
        let _ = Topology::Grid.build(12);
    }
}

//! Crosstalk-graph construction (paper §IV-C and Algorithm 2).
//!
//! The crosstalk graph `Gx` of a connectivity graph `Gc` has one vertex per
//! *coupling* (edge of `Gc`); two vertices are adjacent when the couplings
//! either share a qubit or are connected by a path of at most `d` edges.
//! Two simultaneous two-qubit gates whose couplings are adjacent in `Gx`
//! would crosstalk if they used nearby interaction frequencies, so a proper
//! coloring of `Gx` (or of its *active subgraph* for one circuit layer)
//! yields a safe frequency assignment.
//!
//! For the 2-D mesh the paper reports that 8 colors always suffice for the
//! distance-1 crosstalk graph (Fig. 7); [`mesh_eight_coloring`] constructs
//! that pattern explicitly.

use crate::Graph;
use std::collections::HashMap;

/// The distance-`d` crosstalk graph of a device connectivity graph.
///
/// Node `i` of the crosstalk graph corresponds to edge `i` (a coupling) of
/// the connectivity graph, in the connectivity graph's edge order.
///
/// # Example
///
/// ```
/// use fastsc_graph::{topology, crosstalk::CrosstalkGraph};
///
/// let mesh = topology::grid(3, 3);
/// let x = CrosstalkGraph::build(&mesh, 1);
/// assert_eq!(x.graph().node_count(), mesh.edge_count());
/// // In a 3x3 mesh every pair of couplings is within distance 1, except
/// // opposite border edges.
/// assert!(x.graph().edge_count() > mesh.line_graph().edge_count());
/// ```
#[derive(Debug, Clone)]
pub struct CrosstalkGraph {
    graph: Graph,
    couplings: Vec<(usize, usize)>,
    pair_index: HashMap<(usize, usize), usize>,
    distance: usize,
}

impl CrosstalkGraph {
    /// Builds the distance-`d` crosstalk graph of `connectivity`
    /// (paper Algorithm 2).
    ///
    /// * `d == 0` yields exactly the line graph (couplings conflict only
    ///   when they share a qubit);
    /// * `d == 1` is the paper's default (nearest-neighbor crosstalk);
    /// * `d >= 2` also covers next-neighbor residual coupling (§IV-C-3).
    pub fn build(connectivity: &Graph, d: usize) -> Self {
        let mut graph = connectivity.line_graph();
        let couplings: Vec<(usize, usize)> =
            connectivity.edges().map(|(_, endpoints)| endpoints).collect();

        if d == 1 {
            // Distance 1 (the paper's default): two couplings are near
            // exactly when some pair of their endpoints is equal or
            // directly coupled — no BFS ball matrix needed, which keeps
            // small region sub-devices of a partitioned compile from
            // paying an `O(V·(V+E))` setup per region. The pairwise
            // sweep over couplings remains (the device-wide superlinear
            // term partition-and-stitch exists to avoid).
            for e1 in 0..couplings.len() {
                let (u1, v1) = couplings[e1];
                let (n_u1, n_v1) = (connectivity.neighbors(u1), connectivity.neighbors(v1));
                for (offset, &(u2, v2)) in couplings[e1 + 1..].iter().enumerate() {
                    let e2 = e1 + 1 + offset;
                    let near = u1 == u2
                        || u1 == v2
                        || v1 == u2
                        || v1 == v2
                        || n_u1.iter().any(|&w| w == u2 || w == v2)
                        || n_v1.iter().any(|&w| w == u2 || w == v2);
                    if near {
                        // The line graph may already contain the edge.
                        let _ = graph.add_edge(e1, e2);
                    }
                }
            }
        } else if d > 1 {
            // Balls of radius d around every qubit, via depth-capped BFS.
            let balls: Vec<Vec<u32>> = (0..connectivity.node_count())
                .map(|q| {
                    connectivity
                        .bfs_distances(q)
                        .into_iter()
                        .map(|opt| opt.unwrap_or(u32::MAX))
                        .collect()
                })
                .collect();
            let d = d as u32;
            for e1 in 0..couplings.len() {
                let (u1, v1) = couplings[e1];
                for (offset, &(u2, v2)) in couplings[e1 + 1..].iter().enumerate() {
                    let e2 = e1 + 1 + offset;
                    let near = balls[u1][u2] <= d
                        || balls[u1][v2] <= d
                        || balls[v1][u2] <= d
                        || balls[v1][v2] <= d;
                    if near {
                        // The line graph may already contain the edge.
                        let _ = graph.add_edge(e1, e2);
                    }
                }
            }
        }
        let pair_index = couplings.iter().enumerate().map(|(i, &pair)| (pair, i)).collect();
        CrosstalkGraph { graph, couplings, pair_index, distance: d }
    }

    /// The underlying graph (nodes are couplings).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The crosstalk distance `d` used at construction.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of couplings (crosstalk-graph nodes).
    pub fn coupling_count(&self) -> usize {
        self.couplings.len()
    }

    /// The `(qubit, qubit)` endpoints of coupling `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= coupling_count()`.
    pub fn coupling(&self, i: usize) -> (usize, usize) {
        self.couplings[i]
    }

    /// The coupling index between two qubits, if they are directly coupled.
    ///
    /// O(1): the scheduler hot loop calls this once per two-qubit gate per
    /// cycle, so the lookup is backed by a qubit-pair hash index rather
    /// than a scan of the coupling list.
    pub fn coupling_between(&self, q1: usize, q2: usize) -> Option<usize> {
        self.pair_index.get(&(q1.min(q2), q1.max(q2))).copied()
    }

    /// Crosstalk-graph neighbors of coupling `i`: all couplings that must
    /// not share interaction frequencies with it.
    ///
    /// # Panics
    ///
    /// Panics if `i >= coupling_count()`.
    pub fn conflicts(&self, i: usize) -> &[usize] {
        self.graph.neighbors(i)
    }

    /// The subgraph of the crosstalk graph induced by the given *active*
    /// couplings (those executing a two-qubit gate in the current layer),
    /// plus the mapping from subgraph node to coupling index.
    ///
    /// # Panics
    ///
    /// Panics if any coupling index is out of range.
    pub fn active_subgraph(&self, active: &[usize]) -> (Graph, Vec<usize>) {
        self.graph.induced_subgraph(active)
    }
}

/// The explicit 8-coloring of the distance-1 crosstalk graph of a
/// `rows x cols` mesh (paper Fig. 7 right).
///
/// Returns one color in `0..8` per mesh edge, indexed by the edge order of
/// [`topology::grid`](crate::topology::grid). Horizontal edges use colors
/// `0..4` with the pattern `(c + 2r) mod 4`; vertical edges use colors
/// `4..8` with the pattern `4 + (r + 2c) mod 4`. Any two edges within
/// distance 1 of each other receive distinct colors, for any mesh size —
/// this witnesses the paper's claim that frequency crowding on a mesh does
/// not grow with device size.
pub fn mesh_eight_coloring(rows: usize, cols: usize) -> Vec<usize> {
    let grid = crate::topology::grid(rows, cols);
    let mut colors = Vec::with_capacity(grid.edge_count());
    for (_, (u, v)) in grid.edges() {
        let (r, c) = crate::topology::grid_coord(u, cols);
        let color = if v == u + 1 {
            (c + 2 * r) % 4 // horizontal edge (r, c) - (r, c + 1)
        } else {
            4 + (r + 2 * c) % 4 // vertical edge (r, c) - (r + 1, c)
        };
        colors.push(color);
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coloring, topology};

    #[test]
    fn distance_zero_is_line_graph() {
        let g = topology::grid(3, 3);
        let x = CrosstalkGraph::build(&g, 0);
        let lg = g.line_graph();
        assert_eq!(x.graph().node_count(), lg.node_count());
        assert_eq!(x.graph().edge_count(), lg.edge_count());
    }

    #[test]
    fn distance_one_supergraph_of_line_graph() {
        let g = topology::grid(4, 4);
        let x0 = CrosstalkGraph::build(&g, 0);
        let x1 = CrosstalkGraph::build(&g, 1);
        for (_, (a, b)) in x0.graph().edges() {
            assert!(x1.graph().has_edge(a, b));
        }
        assert!(x1.graph().edge_count() > x0.graph().edge_count());
    }

    #[test]
    fn distance_grows_edges_monotonically() {
        let g = topology::grid(4, 4);
        let e: Vec<usize> =
            (0..4).map(|d| CrosstalkGraph::build(&g, d).graph().edge_count()).collect();
        assert!(e[0] < e[1] && e[1] < e[2] && e[2] <= e[3]);
    }

    #[test]
    fn path_crosstalk_matches_hand_computation() {
        // Path 0-1-2-3: couplings e0=(0,1), e1=(1,2), e2=(2,3).
        // d=1: e0,e1 share qubit 1; e1,e2 share qubit 2; e0,e2 are one edge
        // apart (qubits 1 and 2 adjacent) so they conflict too.
        let g = topology::linear(4);
        let x = CrosstalkGraph::build(&g, 1);
        assert_eq!(x.graph().edge_count(), 3);
        assert!(x.graph().has_edge(0, 2));
        // d=0: only the shared-vertex conflicts.
        let x0 = CrosstalkGraph::build(&g, 0);
        assert_eq!(x0.graph().edge_count(), 2);
        assert!(!x0.graph().has_edge(0, 2));
    }

    #[test]
    fn long_path_distance_two() {
        // Path of 6 nodes; e0=(0,1) and e3=(3,4) are 2 apart (1->2->3).
        let g = topology::linear(6);
        let x1 = CrosstalkGraph::build(&g, 1);
        assert!(!x1.graph().has_edge(0, 3));
        let x2 = CrosstalkGraph::build(&g, 2);
        assert!(x2.graph().has_edge(0, 3));
        assert!(!x2.graph().has_edge(0, 4));
    }

    #[test]
    fn coupling_lookup_roundtrip() {
        let g = topology::grid(3, 3);
        let x = CrosstalkGraph::build(&g, 1);
        for i in 0..x.coupling_count() {
            let (a, b) = x.coupling(i);
            assert_eq!(x.coupling_between(a, b), Some(i));
            assert_eq!(x.coupling_between(b, a), Some(i));
        }
        assert_eq!(x.coupling_between(0, 8), None);
    }

    #[test]
    fn active_subgraph_restricts_conflicts() {
        let g = topology::grid(3, 3);
        let x = CrosstalkGraph::build(&g, 1);
        // Two far-apart couplings: opposite corners of the mesh.
        let c1 = x.coupling_between(0, 1).expect("corner coupling");
        let c2 = x.coupling_between(7, 8).expect("corner coupling");
        let (sub, map) = x.active_subgraph(&[c1, c2]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(map, vec![c1, c2]);
    }

    #[test]
    fn mesh_eight_coloring_uses_at_most_eight() {
        for (r, c) in [(2, 2), (3, 3), (4, 4), (5, 5), (6, 7)] {
            let colors = mesh_eight_coloring(r, c);
            assert!(coloring::color_count(&colors) <= 8, "{r}x{c} mesh");
        }
    }

    #[test]
    fn mesh_eight_coloring_is_proper_on_crosstalk_graph() {
        for (r, c) in [(2, 2), (3, 3), (4, 5), (5, 5), (8, 8)] {
            let g = topology::grid(r, c);
            let x = CrosstalkGraph::build(&g, 1);
            let colors = mesh_eight_coloring(r, c);
            assert!(
                coloring::is_proper(x.graph(), &colors),
                "8-coloring must be proper on the {r}x{c} crosstalk graph"
            );
        }
    }

    #[test]
    fn large_mesh_needs_exactly_eight() {
        // The paper: 8 is the minimum for (large enough) N x N meshes.
        let colors = mesh_eight_coloring(5, 5);
        assert_eq!(coloring::color_count(&colors), 8);
    }

    #[test]
    fn crosstalk_graph_is_dense_compared_to_connectivity() {
        // Fig. 14 bottom: the mesh crosstalk graph is "quite dense".
        let g = topology::grid(4, 4);
        let x = CrosstalkGraph::build(&g, 1);
        let avg_deg = 2.0 * x.graph().edge_count() as f64 / x.graph().node_count() as f64;
        assert!(avg_deg > 6.0, "average crosstalk degree {avg_deg} too low");
    }

    #[test]
    fn conflicts_are_symmetric() {
        let g = topology::grid(3, 4);
        let x = CrosstalkGraph::build(&g, 1);
        for i in 0..x.coupling_count() {
            for &j in x.conflicts(i) {
                assert!(x.conflicts(j).contains(&i));
            }
        }
    }
}

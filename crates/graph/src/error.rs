use std::error::Error;
use std::fmt;

/// Errors produced when constructing or mutating a [`Graph`](crate::Graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphError {
    /// A node index was at least the number of nodes in the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// An edge index was at least the number of edges in the graph.
    EdgeOutOfRange {
        /// The offending edge index.
        edge: usize,
        /// The number of edges in the graph at the time of the call.
        edge_count: usize,
    },
    /// An edge connecting a node to itself was requested.
    SelfLoop {
        /// The node for which a self-loop was requested.
        node: usize,
    },
    /// The requested edge already exists (the graph is simple).
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node index {node} out of range for graph with {node_count} nodes")
            }
            GraphError::EdgeOutOfRange { edge, edge_count } => {
                write!(f, "edge index {edge} out of range for graph with {edge_count} edges")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} not allowed in a simple graph")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already present in a simple graph")
            }
        }
    }
}

impl Error for GraphError {}

//! Deterministic partitioning of a connectivity graph into connected
//! regions, the planning half of partition-and-stitch compilation: a
//! large device's coupling graph is cut into regions of bounded size,
//! each region is compiled as an independent sub-problem, and the
//! boundary is reconciled afterwards.

use crate::Graph;
use std::collections::VecDeque;

/// Cuts `g` into connected regions of at most `max_region` nodes.
///
/// Regions are grown one at a time by breadth-first accretion: each
/// region is seeded at the lowest-indexed unassigned node and absorbs
/// unassigned nodes in breadth-first discovery order, until the region
/// reaches `max_region` nodes or runs out of frontier. Breadth-first
/// growth keeps regions round (a distance ball around the seed) rather
/// than stringy, which minimizes the boundary the stitch pass must
/// reconcile — on a grid the cut stays `O(√region)` per region instead
/// of touching nearly every node. The result is a partition of the node
/// set (every node in exactly one region), each region connected, listed
/// in seed order with each region's nodes sorted ascending. The
/// procedure is a pure function of `(g, max_region)` — no hashing, no
/// randomness — so every call site (compiler, cache keys, tests) sees
/// the same plan.
///
/// # Panics
///
/// Panics if `max_region == 0`.
pub fn grow_regions(g: &Graph, max_region: usize) -> Vec<Vec<usize>> {
    assert!(max_region > 0, "regions must hold at least one node");
    let n = g.node_count();
    let mut assigned = vec![false; n];
    // Queue membership for the current region, so a node discovered by
    // several region members enters the frontier exactly once.
    let mut queued = vec![false; n];
    let mut regions = Vec::new();
    for seed in 0..n {
        if assigned[seed] {
            continue;
        }
        let mut region = vec![seed];
        assigned[seed] = true;
        let mut frontier: VecDeque<usize> = VecDeque::new();
        for &w in g.neighbors(seed) {
            if !assigned[w] && !queued[w] {
                queued[w] = true;
                frontier.push_back(w);
            }
        }
        while region.len() < max_region {
            let Some(next) = frontier.pop_front() else { break };
            queued[next] = false;
            assigned[next] = true;
            region.push(next);
            for &w in g.neighbors(next) {
                if !assigned[w] && !queued[w] {
                    queued[w] = true;
                    frontier.push_back(w);
                }
            }
        }
        // Reset leftover frontier marks before the next region grows.
        for &w in &frontier {
            queued[w] = false;
        }
        region.sort_unstable();
        regions.push(region);
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn is_connected(g: &Graph, nodes: &[usize]) -> bool {
        if nodes.is_empty() {
            return true;
        }
        let inside: std::collections::HashSet<usize> = nodes.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if inside.contains(&v) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen.len() == nodes.len()
    }

    #[test]
    fn partitions_every_node_exactly_once() {
        let g = topology::grid(8, 8);
        let regions = grow_regions(&g, 16);
        let mut all: Vec<usize> = regions.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn respects_the_size_cap_and_stays_connected() {
        let g = topology::grid(8, 8);
        for cap in [1, 7, 16, 64, 100] {
            for region in grow_regions(&g, cap) {
                assert!(!region.is_empty() && region.len() <= cap);
                assert!(is_connected(&g, &region), "cap {cap}: region {region:?}");
            }
        }
    }

    #[test]
    fn is_deterministic_and_cap_at_least_n_yields_one_region() {
        let g = topology::grid(5, 5);
        assert_eq!(grow_regions(&g, 9), grow_regions(&g, 9));
        assert_eq!(grow_regions(&g, 25).len(), 1);
        assert_eq!(grow_regions(&g, usize::MAX).len(), 1);
    }

    #[test]
    fn covers_disconnected_graphs() {
        // Two disjoint triangles: regions never bridge components.
        let g = Graph::with_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
            .expect("valid");
        let regions = grow_regions(&g, 6);
        assert_eq!(regions, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_zero_cap() {
        let _ = grow_regions(&topology::linear(3), 0);
    }
}

//! Coupler hardware variants (paper Fig. 1).

/// How qubits are coupled on the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CouplerKind {
    /// A fixed capacitor between neighbors: always-on coupling `g0`. This
    /// is the hardware this work targets (tunable qubit, fixed coupler).
    Fixed,
    /// A flux-tunable "gmon" coupler (Baseline G / Google Sycamore):
    /// active couplings see the full `g0`, deactivated couplings are
    /// suppressed down to `residual * g0`.
    ///
    /// The paper's Fig. 12 sweeps `residual` in `[0, 0.8]`; 0 models the
    /// idealized perfectly-off coupler assumed by Baseline G in Fig. 9.
    Tunable {
        /// Fraction of `g0` that leaks through a deactivated coupler.
        residual: f64,
    },
}

impl CouplerKind {
    /// A tunable coupler with the given residual fraction.
    ///
    /// # Panics
    ///
    /// Panics if `residual` is not within `[0, 1]`.
    pub fn tunable(residual: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&residual),
            "residual coupling fraction must be in [0, 1], got {residual}"
        );
        CouplerKind::Tunable { residual }
    }

    /// The coupling-strength multiplier for a coupling that is currently
    /// *inactive* (no two-qubit gate running on it).
    ///
    /// Fixed couplers cannot be turned off (multiplier 1); tunable couplers
    /// leak only their residual fraction.
    pub fn inactive_factor(self) -> f64 {
        match self {
            CouplerKind::Fixed => 1.0,
            CouplerKind::Tunable { residual } => residual,
        }
    }

    /// Whether the hardware has tunable couplers.
    pub fn is_tunable(self) -> bool {
        matches!(self, CouplerKind::Tunable { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_coupler_never_off() {
        assert_eq!(CouplerKind::Fixed.inactive_factor(), 1.0);
        assert!(!CouplerKind::Fixed.is_tunable());
    }

    #[test]
    fn tunable_coupler_suppresses() {
        let c = CouplerKind::tunable(0.1);
        assert_eq!(c.inactive_factor(), 0.1);
        assert!(c.is_tunable());
        assert_eq!(CouplerKind::tunable(0.0).inactive_factor(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_residual_above_one() {
        let _ = CouplerKind::tunable(1.5);
    }
}

//! The device: connectivity + qubit specs + coupler + partition + params.

use crate::coupler::CouplerKind;
use crate::params::DeviceParams;
use crate::partition::{Band, FrequencyPartition};
use crate::sampling;
use crate::transmon::TransmonSpec;
use fastsc_graph::crosstalk::CrosstalkGraph;
use fastsc_graph::{topology, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A compact summary of the calibration-relevant figures of one device:
/// size, connectivity crowding, and coherence. This is what fleet
/// routers consume when they rank shards — cheap to build once at
/// registration, cheap to copy, and a pure function of the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSummary {
    /// Number of qubits.
    pub qubits: usize,
    /// Number of couplings (connectivity edges).
    pub couplings: usize,
    /// Mean connectivity degree (`2E / N`; 0 for an empty device).
    pub mean_degree: f64,
    /// Maximum connectivity degree.
    pub max_degree: usize,
    /// Mean energy-relaxation time `T1` across qubits, µs.
    pub mean_t1_us: f64,
    /// Worst (minimum) `T1` across qubits, µs.
    pub min_t1_us: f64,
    /// Mean dephasing time `T2` across qubits, µs.
    pub mean_t2_us: f64,
    /// Worst (minimum) `T2` across qubits, µs.
    pub min_t2_us: f64,
}

/// A complete description of a superconducting quantum device.
///
/// Construct with the convenience constructors ([`Device::grid`],
/// [`Device::linear`], [`Device::from_topology`]) or with
/// [`DeviceBuilder`] for full control.
#[derive(Debug, Clone)]
pub struct Device {
    connectivity: Graph,
    qubits: Vec<TransmonSpec>,
    coupler: CouplerKind,
    partition: FrequencyPartition,
    params: DeviceParams,
    seed: u64,
}

impl Device {
    /// A `rows x cols` mesh with default parameters and fabrication
    /// variation sampled from the given seed.
    pub fn grid(rows: usize, cols: usize, seed: u64) -> Self {
        DeviceBuilder::new(topology::grid(rows, cols)).seed(seed).build()
    }

    /// A linear chain of `n` qubits.
    pub fn linear(n: usize, seed: u64) -> Self {
        DeviceBuilder::new(topology::linear(n)).seed(seed).build()
    }

    /// A device over one of the Fig. 13 topology families.
    ///
    /// # Panics
    ///
    /// Panics if a 2-D family is requested with non-square `n`.
    pub fn from_topology(t: topology::Topology, n: usize, seed: u64) -> Self {
        DeviceBuilder::new(t.build(n)).seed(seed).build()
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.connectivity.node_count()
    }

    /// Number of couplings (connectivity edges).
    pub fn n_couplings(&self) -> usize {
        self.connectivity.edge_count()
    }

    /// The connectivity graph `Gc`.
    pub fn connectivity(&self) -> &Graph {
        &self.connectivity
    }

    /// The spec of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n_qubits()`.
    pub fn qubit(&self, q: usize) -> &TransmonSpec {
        &self.qubits[q]
    }

    /// All qubit specs, indexed by qubit.
    pub fn qubits(&self) -> &[TransmonSpec] {
        &self.qubits
    }

    /// The coupler hardware.
    pub fn coupler(&self) -> CouplerKind {
        self.coupler
    }

    /// The frequency partition used for assignment.
    pub fn partition(&self) -> FrequencyPartition {
        self.partition
    }

    /// Device-wide physical constants.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// The fabrication-variation seed this device was sampled from.
    ///
    /// Together with the connectivity graph and builder parameters, the
    /// seed determines every sampled per-qubit frequency, so the compile
    /// service uses it as the device component of whole-schedule cache
    /// keys (two shards share cached results only when their seeds and
    /// topologies agree).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Extracts the [`CalibrationSummary`] of this device: qubit and
    /// coupling counts, degree statistics of the connectivity graph, and
    /// the mean/worst coherence times of the sampled qubits. All figures
    /// are deterministic functions of the device, so the summary is a
    /// stable per-shard profile for placement decisions.
    pub fn calibration_summary(&self) -> CalibrationSummary {
        let qubits = self.n_qubits();
        let couplings = self.n_couplings();
        let mean_degree =
            if qubits == 0 { 0.0 } else { 2.0 * couplings as f64 / qubits as f64 };
        let fold = |f: fn(&TransmonSpec) -> f64| {
            let (mut sum, mut min) = (0.0, f64::INFINITY);
            for spec in &self.qubits {
                let value = f(spec);
                sum += value;
                min = min.min(value);
            }
            if qubits == 0 {
                (0.0, 0.0)
            } else {
                (sum / qubits as f64, min)
            }
        };
        let (mean_t1_us, min_t1_us) = fold(|spec| spec.t1_us);
        let (mean_t2_us, min_t2_us) = fold(|spec| spec.t2_us);
        CalibrationSummary {
            qubits,
            couplings,
            mean_degree,
            max_degree: self.connectivity.max_degree(),
            mean_t1_us,
            min_t1_us,
            mean_t2_us,
            min_t2_us,
        }
    }

    /// The distance-`d` crosstalk graph `Gx` (paper Algorithm 2).
    pub fn crosstalk_graph(&self, d: usize) -> CrosstalkGraph {
        CrosstalkGraph::build(&self.connectivity, d)
    }

    /// Whether qubits `a` and `b` are directly coupled.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.connectivity.has_edge(a, b)
    }

    /// Returns a copy of this device with a different coupler (used to
    /// build the gmon baseline from the same chip).
    pub fn with_coupler(&self, coupler: CouplerKind) -> Self {
        Device { coupler, ..self.clone() }
    }

    /// The sub-device induced by `qubits`: local qubit `i` is global
    /// qubit `qubits[i]`, keeping that qubit's sampled spec, and the
    /// connectivity is the induced subgraph (local edge order follows
    /// the global edge order restricted to in-set edges, so a local →
    /// global coupling map is recoverable via
    /// [`edge_between`](fastsc_graph::Graph::edge_between)). Coupler,
    /// frequency partition, physical params, and the fabrication seed
    /// carry over unchanged — the sub-device describes the *same*
    /// hardware, restricted to a region, which is what the partitioned
    /// compile path needs for region compiles to agree with whole-device
    /// compiles.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `qubits` is out of range (duplicates are
    /// ignored after the first occurrence, matching `induced_subgraph`).
    pub fn induced_subdevice(&self, qubits: &[usize]) -> Device {
        let (connectivity, to_old) = self.connectivity.induced_subgraph(qubits);
        let specs = to_old.iter().map(|&g| self.qubits[g]).collect();
        Device {
            connectivity,
            qubits: specs,
            coupler: self.coupler,
            partition: self.partition,
            params: self.params,
            seed: self.seed,
        }
    }

    /// Feeds every identity-bearing field of this device into `sink` as
    /// stable 64-bit words (floats as IEEE-754 bits, in a fixed order).
    ///
    /// This is the raw material for device fingerprints (the compile
    /// service hashes the word stream into whole-schedule cache keys):
    /// two devices emit the same stream exactly when every field that
    /// can influence compilation is identical. `Device` and every nested
    /// struct are destructured **exhaustively** — adding a field to any
    /// of them is a compile error here, so a new field can never
    /// silently escape the identity.
    pub fn visit_identity(&self, sink: &mut dyn FnMut(u64)) {
        let Device { connectivity, qubits, coupler, partition, params, seed } = self;
        sink(*seed);
        sink(connectivity.structural_hash());
        sink(qubits.len() as u64);
        for spec in qubits {
            let TransmonSpec { omega_max, anharmonicity, sweet_spot_low, t1_us, t2_us } = *spec;
            for value in [omega_max, anharmonicity, sweet_spot_low, t1_us, t2_us] {
                sink(value.to_bits());
            }
        }
        match *coupler {
            CouplerKind::Fixed => sink(0),
            CouplerKind::Tunable { residual } => {
                sink(1);
                sink(residual.to_bits());
            }
        }
        let FrequencyPartition { parking, exclusion, interaction } = *partition;
        for band in [parking, exclusion, interaction] {
            let Band { lo, hi } = band;
            sink(lo.to_bits());
            sink(hi.to_bits());
        }
        let DeviceParams {
            g0,
            omega_ref,
            t_single_ns,
            flux_settle_ns,
            base_two_qubit_error,
            base_single_qubit_error,
            distance2_coupling_factor,
            flux_noise_slope,
        } = *params;
        for value in [
            g0,
            omega_ref,
            t_single_ns,
            flux_settle_ns,
            base_two_qubit_error,
            base_single_qubit_error,
            distance2_coupling_factor,
            flux_noise_slope,
        ] {
            sink(value.to_bits());
        }
    }
}

/// Builder for [`Device`] (non-consuming configuration, terminal `build`).
///
/// # Example
///
/// ```
/// use fastsc_device::{CouplerKind, Device, DeviceParams};
/// use fastsc_graph::topology;
///
/// let mut b = fastsc_device::DeviceBuilder::new(topology::grid(3, 3));
/// b.seed(11).coupler(CouplerKind::tunable(0.05));
/// let device: Device = b.build();
/// assert!(device.coupler().is_tunable());
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    connectivity: Graph,
    seed: u64,
    omega_max_mean: f64,
    omega_max_std: f64,
    coupler: CouplerKind,
    partition: FrequencyPartition,
    params: DeviceParams,
    t1_us: f64,
    t2_us: f64,
}

impl DeviceBuilder {
    /// Starts a builder over the given connectivity graph.
    pub fn new(connectivity: Graph) -> Self {
        DeviceBuilder {
            connectivity,
            seed: 0,
            // Paper §VI-C: omega_max ~ N(omega_bar, 0.1 GHz); the high
            // sweet spot sits near 7 GHz (Fig. 14 / App. A).
            omega_max_mean: 7.0,
            omega_max_std: 0.1,
            coupler: CouplerKind::Fixed,
            partition: FrequencyPartition::reference(),
            params: DeviceParams::default(),
            t1_us: 25.0,
            t2_us: 20.0,
        }
    }

    /// Seed for fabrication-variation sampling.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Mean and standard deviation of the sampled maximum frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `std < 0`.
    pub fn omega_max_distribution(&mut self, mean: f64, std: f64) -> &mut Self {
        assert!(std >= 0.0, "standard deviation must be non-negative");
        self.omega_max_mean = mean;
        self.omega_max_std = std;
        self
    }

    /// Coupler hardware (default: fixed).
    pub fn coupler(&mut self, coupler: CouplerKind) -> &mut Self {
        self.coupler = coupler;
        self
    }

    /// Frequency partition (default: the paper's reference design).
    pub fn partition(&mut self, partition: FrequencyPartition) -> &mut Self {
        self.partition = partition;
        self
    }

    /// Physical constants (default: [`DeviceParams::default`]).
    pub fn params(&mut self, params: DeviceParams) -> &mut Self {
        self.params = params;
        self
    }

    /// Coherence times applied to every qubit.
    ///
    /// # Panics
    ///
    /// Panics unless both times are positive.
    pub fn coherence(&mut self, t1_us: f64, t2_us: f64) -> &mut Self {
        assert!(t1_us > 0.0 && t2_us > 0.0, "coherence times must be positive");
        self.t1_us = t1_us;
        self.t2_us = t2_us;
        self
    }

    /// Builds the device, sampling per-qubit maximum frequencies.
    pub fn build(&self) -> Device {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let qubits: Vec<TransmonSpec> = (0..self.connectivity.node_count())
            .map(|_| {
                let omega =
                    sampling::gaussian(&mut rng, self.omega_max_mean, self.omega_max_std);
                TransmonSpec {
                    t1_us: self.t1_us,
                    t2_us: self.t2_us,
                    ..TransmonSpec::with_omega_max(omega.max(0.1))
                }
            })
            .collect();
        Device {
            connectivity: self.connectivity.clone(),
            qubits,
            coupler: self.coupler,
            partition: self.partition,
            params: self.params,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_device_shape() {
        let d = Device::grid(3, 3, 1);
        assert_eq!(d.n_qubits(), 9);
        assert_eq!(d.n_couplings(), 12);
        assert!(d.are_coupled(0, 1));
        assert!(!d.are_coupled(0, 8));
        assert_eq!(d.coupler(), CouplerKind::Fixed);
    }

    #[test]
    fn fabrication_variation_is_sampled() {
        let d = Device::grid(4, 4, 5);
        let omegas: Vec<f64> = d.qubits().iter().map(|q| q.omega_max).collect();
        let distinct = omegas.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        assert!(distinct, "all omega_max identical — variation not applied");
        // All within a plausible band around 7 GHz.
        for w in omegas {
            assert!((6.0..8.0).contains(&w), "omega_max = {w}");
        }
    }

    #[test]
    fn visit_identity_is_stable_and_discriminating() {
        let words = |d: &Device| {
            let mut out = Vec::new();
            d.visit_identity(&mut |w| out.push(w));
            out
        };
        let base = Device::grid(3, 3, 7);
        assert_eq!(words(&base), words(&Device::grid(3, 3, 7)));
        assert_ne!(words(&base), words(&Device::grid(3, 3, 8)), "seed must matter");
        assert_ne!(words(&base), words(&Device::linear(9, 7)), "topology must matter");
        let gmon = base.with_coupler(CouplerKind::tunable(0.1));
        assert_ne!(words(&base), words(&gmon), "coupler must matter");
    }

    #[test]
    fn seed_is_recorded() {
        assert_eq!(Device::grid(3, 3, 42).seed(), 42);
        assert_eq!(Device::linear(4, 9).seed(), 9);
        // Derived copies keep the fabrication seed of the original chip.
        let gmon = Device::grid(2, 2, 17).with_coupler(CouplerKind::tunable(0.0));
        assert_eq!(gmon.seed(), 17);
    }

    #[test]
    fn same_seed_same_device() {
        let a = Device::grid(3, 3, 42);
        let b = Device::grid(3, 3, 42);
        for (qa, qb) in a.qubits().iter().zip(b.qubits()) {
            assert_eq!(qa.omega_max, qb.omega_max);
        }
        let c = Device::grid(3, 3, 43);
        let differs = a
            .qubits()
            .iter()
            .zip(c.qubits())
            .any(|(qa, qc)| (qa.omega_max - qc.omega_max).abs() > 1e-12);
        assert!(differs);
    }

    #[test]
    fn calibration_summary_reflects_topology_and_coherence() {
        let mut b = DeviceBuilder::new(fastsc_graph::topology::grid(3, 3));
        b.seed(7).coherence(50.0, 40.0);
        let summary = b.build().calibration_summary();
        assert_eq!((summary.qubits, summary.couplings), (9, 12));
        assert_eq!(summary.max_degree, 4, "the center of a 3x3 mesh has degree 4");
        assert!((summary.mean_degree - 24.0 / 9.0).abs() < 1e-12);
        // Builder coherence is uniform, so mean == min.
        assert_eq!((summary.mean_t1_us, summary.min_t1_us), (50.0, 50.0));
        assert_eq!((summary.mean_t2_us, summary.min_t2_us), (40.0, 40.0));
        // A longer-lived chip summarizes strictly better.
        let default_summary = Device::grid(3, 3, 7).calibration_summary();
        assert!(default_summary.min_t1_us < summary.min_t1_us);
    }

    #[test]
    fn crosstalk_graph_dimensions() {
        let d = Device::grid(3, 3, 0);
        let x = d.crosstalk_graph(1);
        assert_eq!(x.coupling_count(), 12);
        assert_eq!(x.distance(), 1);
    }

    #[test]
    fn builder_customization() {
        let mut b = DeviceBuilder::new(fastsc_graph::topology::linear(5));
        b.seed(9)
            .coupler(CouplerKind::tunable(0.2))
            .coherence(50.0, 40.0)
            .omega_max_distribution(6.8, 0.05);
        let d = b.build();
        assert_eq!(d.n_qubits(), 5);
        assert_eq!(d.coupler().inactive_factor(), 0.2);
        assert_eq!(d.qubit(0).t1_us, 50.0);
        for q in d.qubits() {
            assert!((6.4..7.2).contains(&q.omega_max));
        }
    }

    #[test]
    fn with_coupler_preserves_chip() {
        let d = Device::grid(2, 2, 3);
        let gmon = d.with_coupler(CouplerKind::tunable(0.0));
        assert!(gmon.coupler().is_tunable());
        for (a, b) in d.qubits().iter().zip(gmon.qubits()) {
            assert_eq!(a.omega_max, b.omega_max);
        }
    }

    #[test]
    fn induced_subdevice_restricts_chip() {
        let d = Device::grid(3, 3, 7);
        let block = [0usize, 1, 3, 4];
        let sub = d.induced_subdevice(&block);
        assert_eq!(sub.n_qubits(), 4);
        assert_eq!(sub.n_couplings(), 4, "the 2x2 corner block");
        assert_eq!(sub.seed(), d.seed());
        assert_eq!(sub.coupler(), d.coupler());
        // Specs carry over by global identity (local 2 == global 3).
        assert_eq!(sub.qubit(2).omega_max, d.qubit(3).omega_max);
        // Local edge order follows global edge order restricted to the
        // block, and every local edge maps back to a global edge.
        let expected: Vec<(usize, usize)> = d
            .connectivity()
            .edges()
            .map(|(_, uv)| uv)
            .filter(|&(u, v)| block.contains(&u) && block.contains(&v))
            .collect();
        let local: Vec<(usize, usize)> =
            sub.connectivity().edges().map(|(_, (u, v))| (block[u], block[v])).collect();
        assert_eq!(local, expected);
    }

    #[test]
    fn from_topology_families() {
        use fastsc_graph::topology::Topology;
        let lin = Device::from_topology(Topology::Linear, 9, 0);
        let grid = Device::from_topology(Topology::Grid, 9, 0);
        assert_eq!(lin.n_couplings(), 8);
        assert_eq!(grid.n_couplings(), 12);
        let ex = Device::from_topology(Topology::Express2D { k: 2 }, 16, 0);
        assert!(ex.n_couplings() > grid.n_couplings());
    }
}

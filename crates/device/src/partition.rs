//! Frequency-band partitioning (paper §V-B4).
//!
//! The tunable spectrum of a transmon spans only a few GHz, so the compiler
//! splits it into three disjoint regions:
//!
//! * a **parking region** near the low flux sweet spot where idle qubits
//!   sit,
//! * an **exclusion region** where no frequency is ever assigned (it is
//!   the most flux-noise-sensitive stretch and insulates parked qubits
//!   from interacting ones), and
//! * an **interaction region** near the high sweet spot where two-qubit
//!   resonances are placed (higher frequency = faster gate).

use std::fmt;

/// A closed frequency interval `[lo, hi]` in GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Lower edge (GHz).
    pub lo: f64,
    /// Upper edge (GHz).
    pub hi: f64,
}

impl Band {
    /// Creates a band.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either edge is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "band edges must not be NaN");
        assert!(lo <= hi, "band [{lo}, {hi}] is empty");
        Band { lo, hi }
    }

    /// Width in GHz.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint in GHz.
    pub fn center(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `f` lies inside the band (inclusive).
    pub fn contains(self, f: f64) -> bool {
        (self.lo..=self.hi).contains(&f)
    }

    /// `k` values spread across the band with maximum pairwise separation
    /// (`k = 1` returns the center).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn spread(self, k: usize) -> Vec<f64> {
        assert!(k > 0, "cannot spread zero frequencies");
        if k == 1 {
            return vec![self.center()];
        }
        let step = self.width() / (k as f64 - 1.0);
        (0..k).map(|i| self.lo + step * i as f64).collect()
    }
}

impl fmt::Display for Band {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}] GHz", self.lo, self.hi)
    }
}

/// The parking / exclusion / interaction split of the tunable band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyPartition {
    /// Where idle qubits park (low sweet-spot side).
    pub parking: Band,
    /// Buffer region where nothing is assigned.
    pub exclusion: Band,
    /// Where interaction frequencies live (high sweet-spot side).
    pub interaction: Band,
}

impl FrequencyPartition {
    /// The paper's reference design: 1 GHz parking, 0.5 GHz exclusion,
    /// 1 GHz interaction (§V-B4), placed so parking hugs the ~5 GHz low
    /// sweet spot and interaction the ~7 GHz high sweet spot (Fig. 14).
    pub fn reference() -> Self {
        FrequencyPartition {
            parking: Band::new(4.5, 5.5),
            exclusion: Band::new(5.5, 6.0),
            interaction: Band::new(6.0, 7.0),
        }
    }

    /// Creates a partition, validating ordering and disjointness.
    ///
    /// # Panics
    ///
    /// Panics unless `parking.hi <= exclusion.lo <= exclusion.hi <=
    /// interaction.lo`.
    pub fn new(parking: Band, exclusion: Band, interaction: Band) -> Self {
        assert!(
            parking.hi <= exclusion.lo && exclusion.hi <= interaction.lo,
            "regions must be ordered parking < exclusion < interaction and disjoint"
        );
        FrequencyPartition { parking, exclusion, interaction }
    }

    /// The minimum separation guaranteed between any parked qubit and any
    /// interacting qubit: the exclusion width.
    pub fn guard_width(self) -> f64 {
        self.exclusion.width()
    }

    /// The full tunable range covered by the partition.
    pub fn full_range(self) -> Band {
        Band::new(self.parking.lo, self.interaction.hi)
    }

    /// Classifies a frequency.
    pub fn classify(self, f: f64) -> Option<Region> {
        if self.parking.contains(f) {
            Some(Region::Parking)
        } else if self.exclusion.contains(f) {
            Some(Region::Exclusion)
        } else if self.interaction.contains(f) {
            Some(Region::Interaction)
        } else {
            None
        }
    }
}

impl Default for FrequencyPartition {
    fn default() -> Self {
        Self::reference()
    }
}

/// The region a frequency falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Idle parking region.
    Parking,
    /// Forbidden buffer region.
    Exclusion,
    /// Two-qubit interaction region.
    Interaction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_partition_matches_paper_widths() {
        let p = FrequencyPartition::reference();
        assert!((p.parking.width() - 1.0).abs() < 1e-12);
        assert!((p.exclusion.width() - 0.5).abs() < 1e-12);
        assert!((p.interaction.width() - 1.0).abs() < 1e-12);
        assert!((p.guard_width() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classify_regions() {
        let p = FrequencyPartition::reference();
        assert_eq!(p.classify(5.0), Some(Region::Parking));
        assert_eq!(p.classify(5.7), Some(Region::Exclusion));
        assert_eq!(p.classify(6.5), Some(Region::Interaction));
        assert_eq!(p.classify(8.0), None);
        assert_eq!(p.classify(3.0), None);
    }

    #[test]
    #[should_panic(expected = "regions must be ordered")]
    fn rejects_overlapping_regions() {
        let _ = FrequencyPartition::new(
            Band::new(4.5, 6.1),
            Band::new(5.5, 6.0),
            Band::new(6.0, 7.0),
        );
    }

    #[test]
    fn spread_extremes_and_center() {
        let b = Band::new(6.0, 7.0);
        assert_eq!(b.spread(1), vec![6.5]);
        let three = b.spread(3);
        assert_eq!(three, vec![6.0, 6.5, 7.0]);
        let two = b.spread(2);
        assert!((two[1] - two[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "band [7, 6] is empty")]
    fn band_rejects_inverted() {
        let _ = Band::new(7.0, 6.0);
    }

    #[test]
    fn band_accessors() {
        let b = Band::new(1.0, 3.0);
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.center(), 2.0);
        assert!(b.contains(1.0) && b.contains(3.0) && !b.contains(3.01));
        assert_eq!(b.to_string(), "[1.000, 3.000] GHz");
    }

    #[test]
    fn full_range_spans_partition() {
        let p = FrequencyPartition::reference();
        let r = p.full_range();
        assert_eq!(r.lo, 4.5);
        assert_eq!(r.hi, 7.0);
    }
}

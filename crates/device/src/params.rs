//! Device-wide physical constants and the gate-time model.

/// Physical constants shared by all qubits of a device.
///
/// Conventions: frequencies are cyclic frequencies in **GHz**, durations in
/// **ns**. A resonant exchange with coupling `g` (GHz) has transition
/// probability `sin^2(2 pi g t)` after `t` ns, so a complete `iSWAP` takes
/// `t = 1/(4g)` and a complete `CZ` (coupling scaled by `sqrt(2)` through
/// the `|11> <-> |20>` channel, App. B) takes `t = 1/(2 sqrt(2) g)`.
///
/// The default effective coupling `g0 = 5 MHz` pins the iSWAP near the
/// ~50 ns the paper quotes (App. C). The paper's quoted bare capacitive
/// coupling (`~30 MHz`) refers to the raw circuit element; using the
/// effective resonance value keeps gate times, Fig. 2 magnitudes and
/// crosstalk errors mutually consistent (see DESIGN.md, "Model
/// substitutions").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Effective qubit-qubit coupling at the reference frequency, GHz.
    pub g0: f64,
    /// Reference frequency (GHz) at which the coupling equals `g0`; the
    /// effective coupling scales as `omega / omega_ref` so higher
    /// interaction frequencies give faster gates (`t_gate ~ 1/omega`,
    /// paper §V-B3).
    pub omega_ref: f64,
    /// Single-qubit (microwave) gate duration, ns.
    pub t_single_ns: f64,
    /// Flux-pulse settling overhead added to every frequency move, ns
    /// (App. C quotes ~2 ns state-of-the-art).
    pub flux_settle_ns: f64,
    /// Residual calibration error charged to every two-qubit gate even in
    /// the absence of crosstalk (App. C quotes > 99.5 % fidelity).
    pub base_two_qubit_error: f64,
    /// Residual calibration error per single-qubit gate.
    pub base_single_qubit_error: f64,
    /// Effective coupling multiplier for next-neighbor (distance-2)
    /// residual channels; 0 disables them. Models the weaker beyond-
    /// nearest-neighbor interaction discussed in §IV-C-3.
    pub distance2_coupling_factor: f64,
    /// Extra dephasing rate per GHz of detuning from the nearest flux
    /// sweet spot (dimensionless multiplier on `1/T2`); models the flux
    /// noise sensitivity shaded in Fig. 4.
    pub flux_noise_slope: f64,
}

impl DeviceParams {
    /// Effective coupling at interaction frequency `omega` (GHz).
    ///
    /// # Panics
    ///
    /// Panics if `omega` is not positive.
    pub fn coupling_at(&self, omega: f64) -> f64 {
        assert!(omega > 0.0, "frequency must be positive, got {omega}");
        self.g0 * omega / self.omega_ref
    }

    /// Duration of a complete `iSWAP` at interaction frequency `omega`, ns.
    pub fn iswap_duration_ns(&self, omega: f64) -> f64 {
        1.0 / (4.0 * self.coupling_at(omega))
    }

    /// Duration of a `sqrt(iSWAP)` at `omega`, ns (half the iSWAP).
    pub fn sqrt_iswap_duration_ns(&self, omega: f64) -> f64 {
        0.5 * self.iswap_duration_ns(omega)
    }

    /// Duration of a complete `CZ` at `omega`, ns: the `|11> <-> |20>`
    /// channel couples at `sqrt(2) g` and must complete a full cycle
    /// (App. B: `t = pi / (sqrt(2) g)` in angular units).
    pub fn cz_duration_ns(&self, omega: f64) -> f64 {
        1.0 / (std::f64::consts::SQRT_2 * self.coupling_at(omega))
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams {
            g0: 0.005,
            omega_ref: 7.0,
            t_single_ns: 25.0,
            flux_settle_ns: 2.0,
            base_two_qubit_error: 0.005,
            base_single_qubit_error: 0.001,
            distance2_coupling_factor: 0.0,
            flux_noise_slope: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iswap_near_fifty_ns_at_reference() {
        let p = DeviceParams::default();
        let t = p.iswap_duration_ns(p.omega_ref);
        assert!((t - 50.0).abs() < 1e-9, "iSWAP at omega_ref = {t} ns");
    }

    #[test]
    fn gates_faster_at_higher_frequency() {
        let p = DeviceParams::default();
        assert!(p.iswap_duration_ns(7.0) < p.iswap_duration_ns(6.0));
        assert!(p.cz_duration_ns(7.0) < p.cz_duration_ns(6.0));
    }

    #[test]
    fn cz_slower_than_iswap_by_sqrt2_over_2() {
        // t_cz / t_iswap = (1/(sqrt(2) g)) / (1/(4 g)) ... = 4/sqrt(2) / ...
        let p = DeviceParams::default();
        let ratio = p.cz_duration_ns(6.5) / p.iswap_duration_ns(6.5);
        assert!((ratio - 4.0 / std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn sqrt_iswap_is_half_iswap() {
        let p = DeviceParams::default();
        assert!((p.sqrt_iswap_duration_ns(6.2) - 0.5 * p.iswap_duration_ns(6.2)).abs() < 1e-12);
    }

    #[test]
    fn coupling_scales_linearly() {
        let p = DeviceParams::default();
        assert!((p.coupling_at(7.0) - p.g0).abs() < 1e-12);
        assert!((p.coupling_at(3.5) - 0.5 * p.g0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_frequency() {
        let _ = DeviceParams::default().coupling_at(-1.0);
    }
}

//! Device model for frequency-tunable superconducting transmon hardware.
//!
//! A [`Device`] bundles everything the compiler and the noise model need to
//! know about the machine (paper §VI-C):
//!
//! * the **connectivity graph** (2-D mesh by default; linear chains and
//!   express cubes for the Fig. 13 study) with a capacitive coupling on
//!   every edge;
//! * per-qubit [`TransmonSpec`]s — maximum frequency sampled from
//!   `N(omega_bar, 0.1 GHz)` to model fabrication variation, anharmonicity
//!   `alpha/2pi ~ -200 MHz`, `T1`/`T2`, and the two flux sweet spots of an
//!   asymmetric transmon (paper Fig. 4);
//! * the [`FrequencyPartition`] splitting the tunable band into parking,
//!   exclusion and interaction regions (paper §V-B4);
//! * the [`CouplerKind`] — fixed capacitors (this work) or flux-tunable
//!   "gmon" couplers with a residual-coupling factor (Baseline G, Fig. 12);
//! * physical constants ([`DeviceParams`]) for gate durations, coupling
//!   strength and flux-tuning overhead.
//!
//! # Example
//!
//! ```
//! use fastsc_device::Device;
//!
//! let device = Device::grid(4, 4, 7);
//! assert_eq!(device.n_qubits(), 16);
//! let xtalk = device.crosstalk_graph(1);
//! assert_eq!(xtalk.coupling_count(), device.connectivity().edge_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coupler;
mod device;
mod params;
mod partition;
pub mod sampling;
mod transmon;

pub use coupler::CouplerKind;
pub use device::{CalibrationSummary, Device, DeviceBuilder};
pub use params::DeviceParams;
pub use partition::{Band, FrequencyPartition};
pub use transmon::TransmonSpec;

//! Per-qubit transmon parameters.

use std::fmt;

/// Physical parameters of one frequency-tunable (asymmetric) transmon.
///
/// Frequencies are cyclic (ordinary) frequencies in GHz; times in
/// microseconds. Defaults follow the experimentally reported ranges the
/// paper cites (§VI-C, App. C and Kjaergaard et al. 2020).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmonSpec {
    /// Maximum 0-1 transition frequency (upper flux sweet spot), GHz.
    pub omega_max: f64,
    /// Anharmonicity `omega_12 - omega_01` in GHz (negative for transmons;
    /// the paper quotes `|alpha|/2pi ~ 200 MHz`).
    pub anharmonicity: f64,
    /// Lower flux sweet spot of the asymmetric transmon, GHz (Fig. 4).
    pub sweet_spot_low: f64,
    /// Energy-relaxation time constant T1, microseconds.
    pub t1_us: f64,
    /// Dephasing time constant T2, microseconds.
    pub t2_us: f64,
}

impl TransmonSpec {
    /// A spec with the workspace defaults, with the given maximum
    /// frequency.
    ///
    /// # Panics
    ///
    /// Panics if `omega_max` is not positive and finite.
    pub fn with_omega_max(omega_max: f64) -> Self {
        assert!(
            omega_max.is_finite() && omega_max > 0.0,
            "omega_max must be positive and finite, got {omega_max}"
        );
        TransmonSpec {
            omega_max,
            // The low sweet spot of an asymmetric transmon sits a couple of
            // GHz below the maximum (junction asymmetry d ~ 0.7).
            sweet_spot_low: omega_max - 2.0,
            ..TransmonSpec::default()
        }
    }

    /// The 1-2 transition frequency for a given 0-1 frequency:
    /// `omega_12 = omega_01 + alpha`.
    pub fn omega12(&self, omega01: f64) -> f64 {
        omega01 + self.anharmonicity
    }

    /// Whether `omega01` is reachable by flux tuning: transmons tune
    /// *downward* from `omega_max` (Fig. 4).
    pub fn can_reach(&self, omega01: f64) -> bool {
        omega01 <= self.omega_max
    }

    /// Distance (GHz) to the nearest flux sweet spot; qubits parked away
    /// from sweet spots suffer extra flux-noise dephasing (Fig. 4).
    pub fn sweet_spot_distance(&self, omega01: f64) -> f64 {
        (omega01 - self.omega_max).abs().min((omega01 - self.sweet_spot_low).abs())
    }
}

impl Default for TransmonSpec {
    fn default() -> Self {
        TransmonSpec {
            omega_max: 7.0,
            anharmonicity: -0.2,
            sweet_spot_low: 5.0,
            t1_us: 25.0,
            t2_us: 20.0,
        }
    }
}

impl fmt::Display for TransmonSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transmon(omega_max={:.3} GHz, alpha={:.3} GHz, T1={} us, T2={} us)",
            self.omega_max, self.anharmonicity, self.t1_us, self.t2_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scales() {
        let t = TransmonSpec::default();
        assert!((t.anharmonicity + 0.2).abs() < 1e-12, "alpha ~ -200 MHz");
        assert!(t.omega_max > t.sweet_spot_low);
        assert!(t.t1_us > 0.0 && t.t2_us > 0.0);
    }

    #[test]
    fn omega12_is_below_omega01() {
        let t = TransmonSpec::default();
        assert!(t.omega12(6.5) < 6.5);
        assert!((t.omega12(6.5) - 6.3).abs() < 1e-12);
    }

    #[test]
    fn reachability_is_downward() {
        let t = TransmonSpec::with_omega_max(6.8);
        assert!(t.can_reach(6.8));
        assert!(t.can_reach(5.0));
        assert!(!t.can_reach(6.9));
    }

    #[test]
    fn sweet_spot_distance_zero_at_spots() {
        let t = TransmonSpec::with_omega_max(7.0);
        assert_eq!(t.sweet_spot_distance(7.0), 0.0);
        assert_eq!(t.sweet_spot_distance(5.0), 0.0);
        assert!((t.sweet_spot_distance(6.0) - 1.0).abs() < 1e-12);
        assert!((t.sweet_spot_distance(5.2) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_omega() {
        let _ = TransmonSpec::with_omega_max(0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(TransmonSpec::default().to_string().contains("transmon"));
    }
}

//! Gaussian sampling for fabrication variation.
//!
//! The evaluation samples each qubit's maximum frequency from a normal
//! distribution `N(omega_bar, 0.1 GHz)` (paper §VI-C). `rand` ships only
//! uniform sampling in its core crate, so the Box–Muller transform is
//! implemented here rather than pulling in `rand_distr`.

use rand::Rng;

/// Draws one sample from `N(mean, std_dev)` via the Box–Muller transform.
///
/// # Panics
///
/// Panics if `std_dev` is negative or NaN.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative, got {std_dev}");
    // u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Draws `n` independent samples from `N(mean, std_dev)`.
///
/// # Panics
///
/// Panics if `std_dev` is negative or NaN.
pub fn gaussian_vec<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    n: usize,
) -> Vec<f64> {
    (0..n).map(|_| gaussian(rng, mean, std_dev)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_right() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let samples = gaussian_vec(&mut rng, 5.0, 0.1, n);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.01, "mean = {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std = {}", var.sqrt());
    }

    #[test]
    fn zero_std_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(gaussian(&mut rng, 3.5, 0.0), 3.5);
        }
    }

    #[test]
    fn seeded_reproducibility() {
        let a = gaussian_vec(&mut StdRng::seed_from_u64(42), 0.0, 1.0, 5);
        let b = gaussian_vec(&mut StdRng::seed_from_u64(42), 0.0, 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn rejects_negative_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = gaussian(&mut rng, 0.0, -1.0);
    }
}

//! Property-based tests for span-tree well-formedness.
//!
//! A finished trace must be consumable by exporters without any
//! defensive checks, so the assembled [`SpanTree`] carries structural
//! guarantees: exactly one root when all spans attach under one job
//! span, children properly nested inside their parent's interval,
//! siblings non-overlapping in start order, and every interval
//! monotone (`start_ns <= end_ns`). These tests drive the real RAII /
//! retroactive recording API with randomized nesting scripts — not
//! hand-assembled records — so the guarantees hold for the API as the
//! queue, router, and engine actually use it.

use std::time::Instant;

use fastsc_telemetry::{AttrValue, SpanId, SpanNode, Tracer};
use proptest::prelude::*;

/// Phase names drawn from the real span vocabulary (span names are
/// `&'static str` by design, so scripts pick from a fixed pool).
const NAMES: [&str; 5] = ["compile", "smt", "coloring", "partition", "respond"];

const MAX_DEPTH: usize = 5;

/// Interprets a nesting script under `parent`, driving the tracer the
/// way real call sites do: RAII guards for in-scope phases, with the
/// guard dropped before the next sibling opens, plus retroactive
/// [`Tracer::record`] calls for after-the-fact intervals. Returns the
/// number of spans created.
fn run_script(
    tracer: &Tracer,
    parent: SpanId,
    ops: &mut std::slice::Iter<'_, u8>,
    depth: usize,
) -> usize {
    let mut created = 0;
    while let Some(&op) = ops.next() {
        match op {
            // Open a nested child and hand the rest of the script to it.
            0 if depth < MAX_DEPTH => {
                let guard = tracer.span(NAMES[depth % NAMES.len()], Some(parent));
                created += 1 + run_script(tracer, guard.id(), ops, depth + 1);
            }
            // Close the current level.
            1 => return created,
            // Record a retroactive leaf (the queue-wait pattern).
            2 => {
                let start = Instant::now();
                tracer.record(
                    "queue_wait",
                    Some(parent),
                    start,
                    Instant::now(),
                    vec![("depth", AttrValue::U64(depth as u64))],
                );
                created += 1;
            }
            // An attributed RAII leaf, closed immediately.
            _ => {
                let mut leaf = tracer.span("leaf", Some(parent));
                leaf.attr("depth", depth);
                created += 1;
            }
        }
    }
    created
}

/// Recursive well-formedness: monotone intervals, children inside the
/// parent, siblings ordered by start and non-overlapping.
fn assert_well_formed(node: &SpanNode) {
    assert!(node.start_ns <= node.end_ns, "{}: interval runs backwards", node.name);
    let mut prev_end = node.start_ns;
    for child in &node.children {
        assert!(
            child.start_ns >= node.start_ns && child.end_ns <= node.end_ns,
            "child {} escapes parent {}",
            child.name,
            node.name
        );
        assert!(child.start_ns >= prev_end, "siblings overlap before {}", child.name);
        prev_end = child.end_ns;
        assert_well_formed(child);
    }
}

proptest! {
    #[test]
    fn random_nesting_scripts_build_well_formed_trees(
        ops in proptest::collection::vec(0u8..4, 0..60),
    ) {
        let tracer = Tracer::new();
        let mut root = tracer.span("job", None);
        root.attr("qubits", 4usize);
        let created = run_script(&tracer, root.id(), &mut ops.iter(), 1);
        drop(root);
        let tree = tracer.finish();

        // Exactly one root: everything attached under the job span.
        prop_assert_eq!(tree.roots.len(), 1);
        let root = tree.root().expect("one root");
        prop_assert_eq!(root.name, "job");
        // Nothing recorded is lost and nothing is invented.
        prop_assert_eq!(tree.span_count(), created + 1);
        assert_well_formed(root);
    }

    #[test]
    fn chrome_export_emits_one_complete_event_per_span(
        ops in proptest::collection::vec(0u8..4, 0..40),
    ) {
        let tracer = Tracer::new();
        let root = tracer.span("job", None);
        run_script(&tracer, root.id(), &mut ops.iter(), 1);
        drop(root);
        let tree = tracer.finish();

        let chrome = tree.to_chrome_trace();
        prop_assert!(chrome.starts_with("{\"traceEvents\":["));
        prop_assert!(chrome.ends_with("]}"));
        // Every span becomes exactly one complete ("X") event.
        let events = chrome.matches("\"ph\":\"X\"").count();
        prop_assert_eq!(events, tree.span_count());
    }
}

#[test]
fn retroactive_spans_clamp_to_a_monotone_interval() {
    let tracer = Tracer::new();
    let late = Instant::now();
    let root = tracer.span("job", None);
    // end < start: the record clamps rather than going backwards.
    tracer.record("queue_wait", Some(root.id()), Instant::now(), late, Vec::new());
    drop(root);
    let tree = tracer.finish();
    assert_well_formed(tree.root().expect("root"));
}

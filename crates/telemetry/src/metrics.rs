//! The process-global metrics registry: a fixed set of atomic
//! counters, gauges, and fixed-bucket histograms covering the whole
//! serving stack, snapshot-able for embedders and renderable as
//! Prometheus text exposition format for scrapes.
//!
//! The registry is deliberately *not* generic: every instrument the
//! stack records is a named field on [`Metrics`], so call sites are
//! `metrics().cache_hits.inc()` — no string lookup, no hashing, no
//! allocation on the hot path. Recording is a relaxed atomic op behind
//! one enabled branch ([`set_metrics_enabled`]); disabling stops the
//! counters where they stand (gauges included, so re-enabling after
//! traffic may leave gauges stale until their next update).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether the registry is recording (relaxed load; the default is
/// enabled).
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables all recording into the global registry. The
/// instruments keep their values either way; only new observations are
/// dropped while disabled.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while the registry is disabled).
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depth, jobs in
/// flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (no-op while the registry is disabled).
    pub fn add(&self, delta: i64) {
        if metrics_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Sets the value outright (no-op while the registry is disabled).
    pub fn set(&self, value: i64) {
        if metrics_enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared latency ladder, in nanoseconds: 1µs → 10s in 1–5 steps.
/// One ladder for every duration histogram keeps exposition and
/// cross-metric comparison simple, and spans both the ~10µs engine
/// hot path and multi-second queue waits.
pub const LATENCY_BUCKETS_NS: [u64; 15] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

const BUCKETS: usize = LATENCY_BUCKETS_NS.len();

/// A fixed-bucket duration histogram over [`LATENCY_BUCKETS_NS`], with
/// cumulative-on-read Prometheus semantics (each stored bucket counts
/// only its own range; [`HistogramSnapshot`] accumulates).
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket counts; index `BUCKETS` is the overflow (+Inf) bucket.
    counts: [AtomicU64; BUCKETS + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            counts: [ZERO; BUCKETS + 1],
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one duration (no-op while the registry is disabled).
    pub fn observe(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one duration given in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        if !metrics_enabled() {
            return;
        }
        let bucket = LATENCY_BUCKETS_NS.partition_point(|&bound| bound < ns);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations ever recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy (buckets are read
    /// individually; a scrape racing a recording may be off by the
    /// in-flight sample).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(BUCKETS);
        let mut running = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_NS.iter().enumerate() {
            running += self.counts[i].load(Ordering::Relaxed);
            cumulative.push((bound, running));
        }
        HistogramSnapshot {
            buckets: cumulative,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one [`Histogram`], with Prometheus-style
/// cumulative buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(upper_bound_ns, cumulative_count)` per bucket; observations
    /// above the last bound are only in [`count`](Self::count) (the
    /// implicit `+Inf` bucket).
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, in nanoseconds.
    pub sum_ns: u64,
}

/// Prometheus label values for per-strategy metrics, indexed by
/// `Strategy::stable_code()` (`fastsc_core`): the five paper
/// strategies in their stable order.
pub const STRATEGY_LABELS: [&str; 5] =
    ["baseline_n", "baseline_g", "baseline_u", "baseline_s", "color_dynamic"];

/// The process-global instrument set (obtain via [`metrics`]).
///
/// Naming follows the Prometheus exposition
/// ([`MetricsSnapshot::to_prometheus`]): one field here is one metric
/// family there, with labels flattened into arrays where the label set
/// is fixed (e.g. [`compile_duration`](Self::compile_duration) is
/// `fastsc_compile_duration_seconds{strategy=...}`).
#[derive(Debug, Default)]
pub struct Metrics {
    // --- queue ---
    /// Time jobs spent queued before each dispatch
    /// (`fastsc_queue_wait_seconds`).
    pub queue_wait: Histogram,
    /// Jobs admitted and still waiting (`fastsc_queue_depth`).
    pub queue_depth: Gauge,
    /// Jobs dispatched and not yet completed (`fastsc_queue_inflight`).
    pub queue_inflight: Gauge,
    /// Jobs accepted into the queue
    /// (`fastsc_queue_jobs_total{event="admitted"}`).
    pub jobs_admitted: Counter,
    /// Submissions refused outright (`…{event="rejected"}`).
    pub jobs_rejected: Counter,
    /// Jobs evicted by backpressure (`…{event="shed"}`).
    pub jobs_shed: Counter,
    /// Jobs whose deadline passed in queue (`…{event="expired"}`).
    pub jobs_expired: Counter,
    /// Jobs cancelled by their submitter (`…{event="cancelled"}`).
    pub jobs_cancelled: Counter,
    /// Jobs that delivered a result (`…{event="completed"}`).
    pub jobs_completed: Counter,
    /// Transient failures re-queued for another attempt
    /// (`fastsc_queue_retries_total`).
    pub retries: Counter,
    // --- service / engine ---
    /// Real compile latency per strategy, indexed by
    /// `Strategy::stable_code()`
    /// (`fastsc_compile_duration_seconds{strategy=...}`; see
    /// [`STRATEGY_LABELS`]).
    pub compile_duration: [Histogram; 5],
    /// SMT solve time, cache-miss solves only
    /// (`fastsc_smt_solve_seconds`).
    pub smt_solve: Histogram,
    /// Frequency-memo hits (`fastsc_smt_memo_total{result="hit"}`).
    pub smt_memo_hits: Counter,
    /// Frequency-memo misses that solved
    /// (`fastsc_smt_memo_total{result="solve"}`).
    pub smt_solves: Counter,
    /// Schedule-cache hits, coalesced duplicates included
    /// (`fastsc_cache_requests_total{result="hit"}`).
    pub cache_hits: Counter,
    /// Schedule-cache misses that compiled (`…{result="miss"}`).
    pub cache_misses: Counter,
    /// Artifact-store lookups that served a persisted artifact
    /// (`fastsc_store_requests_total{result="hit"}`).
    pub store_hits: Counter,
    /// Artifact-store lookups that fell through to a cold solve
    /// (`…{result="miss"}`).
    pub store_misses: Counter,
    /// Bytes appended to the on-disk artifact store
    /// (`fastsc_store_bytes_written_total`).
    pub store_bytes_written: Counter,
    /// Breaker trips into quarantine
    /// (`fastsc_breaker_transitions_total{to="open"}`).
    pub breaker_opened: Counter,
    /// Breaker probe dispatches (`…{to="half_open"}`).
    pub breaker_half_open: Counter,
    /// Breaker restores to active (`…{to="closed"}`).
    pub breaker_closed: Counter,
    // --- server ---
    /// Frame bytes read off client sockets
    /// (`fastsc_server_bytes_total{direction="read"}`).
    pub bytes_read: Counter,
    /// Frame bytes written to client sockets (`…{direction="written"}`).
    pub bytes_written: Counter,
    /// Client connections accepted
    /// (`fastsc_server_connections_total`).
    pub connections: Counter,
}

impl Metrics {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const HIST: Histogram = Histogram::new();
        Metrics {
            queue_wait: Histogram::new(),
            queue_depth: Gauge::new(),
            queue_inflight: Gauge::new(),
            jobs_admitted: Counter::new(),
            jobs_rejected: Counter::new(),
            jobs_shed: Counter::new(),
            jobs_expired: Counter::new(),
            jobs_cancelled: Counter::new(),
            jobs_completed: Counter::new(),
            retries: Counter::new(),
            compile_duration: [HIST; 5],
            smt_solve: Histogram::new(),
            smt_memo_hits: Counter::new(),
            smt_solves: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            store_hits: Counter::new(),
            store_misses: Counter::new(),
            store_bytes_written: Counter::new(),
            breaker_opened: Counter::new(),
            breaker_half_open: Counter::new(),
            breaker_closed: Counter::new(),
            bytes_read: Counter::new(),
            bytes_written: Counter::new(),
            connections: Counter::new(),
        }
    }

    /// A structured point-in-time copy of every instrument — the
    /// embedder-facing equivalent of a Prometheus scrape.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queue_wait: self.queue_wait.snapshot(),
            queue_depth: self.queue_depth.get(),
            queue_inflight: self.queue_inflight.get(),
            jobs_admitted: self.jobs_admitted.get(),
            jobs_rejected: self.jobs_rejected.get(),
            jobs_shed: self.jobs_shed.get(),
            jobs_expired: self.jobs_expired.get(),
            jobs_cancelled: self.jobs_cancelled.get(),
            jobs_completed: self.jobs_completed.get(),
            retries: self.retries.get(),
            compile_duration: [0, 1, 2, 3, 4].map(|i| self.compile_duration[i].snapshot()),
            smt_solve: self.smt_solve.snapshot(),
            smt_memo_hits: self.smt_memo_hits.get(),
            smt_solves: self.smt_solves.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            store_hits: self.store_hits.get(),
            store_misses: self.store_misses.get(),
            store_bytes_written: self.store_bytes_written.get(),
            breaker_opened: self.breaker_opened.get(),
            breaker_half_open: self.breaker_half_open.get(),
            breaker_closed: self.breaker_closed.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            connections: self.connections.get(),
        }
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

/// The process-global registry. First call initializes it; recording
/// through it is lock-free thereafter.
pub fn metrics() -> &'static Metrics {
    METRICS.get_or_init(Metrics::new)
}

/// A structured copy of the registry (see [`Metrics::snapshot`]), plus
/// the Prometheus renderer.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Queue-wait histogram.
    pub queue_wait: HistogramSnapshot,
    /// Queue depth gauge.
    pub queue_depth: i64,
    /// In-flight gauge.
    pub queue_inflight: i64,
    /// Lifetime admitted count.
    pub jobs_admitted: u64,
    /// Lifetime rejected count.
    pub jobs_rejected: u64,
    /// Lifetime shed count.
    pub jobs_shed: u64,
    /// Lifetime expired count.
    pub jobs_expired: u64,
    /// Lifetime cancelled count.
    pub jobs_cancelled: u64,
    /// Lifetime completed count.
    pub jobs_completed: u64,
    /// Lifetime retry count.
    pub retries: u64,
    /// Per-strategy compile-latency histograms (see
    /// [`STRATEGY_LABELS`]).
    pub compile_duration: [HistogramSnapshot; 5],
    /// SMT solve-time histogram.
    pub smt_solve: HistogramSnapshot,
    /// Frequency-memo hit count.
    pub smt_memo_hits: u64,
    /// Frequency-memo solve count.
    pub smt_solves: u64,
    /// Schedule-cache hit count.
    pub cache_hits: u64,
    /// Schedule-cache miss count.
    pub cache_misses: u64,
    /// Artifact-store hit count.
    pub store_hits: u64,
    /// Artifact-store miss count.
    pub store_misses: u64,
    /// Bytes appended to the artifact store.
    pub store_bytes_written: u64,
    /// Breaker open-transition count.
    pub breaker_opened: u64,
    /// Breaker half-open-transition count.
    pub breaker_half_open: u64,
    /// Breaker close-transition count.
    pub breaker_closed: u64,
    /// Socket bytes read.
    pub bytes_read: u64,
    /// Socket bytes written.
    pub bytes_written: u64,
    /// Connections accepted.
    pub connections: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, `_total` suffixes on
    /// counters, histogram `_bucket{le=...}`/`_sum`/`_count` series,
    /// durations in seconds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        histogram(
            &mut out,
            "fastsc_queue_wait_seconds",
            "Time jobs spent queued before dispatch.",
            &[("", &self.queue_wait)],
        );
        gauge(
            &mut out,
            "fastsc_queue_depth",
            "Jobs admitted and still waiting.",
            self.queue_depth,
        );
        gauge(
            &mut out,
            "fastsc_queue_inflight",
            "Jobs dispatched and not yet completed.",
            self.queue_inflight,
        );
        counter_family(
            &mut out,
            "fastsc_queue_jobs_total",
            "Queue lifecycle events by outcome.",
            &[
                ("{event=\"admitted\"}", self.jobs_admitted),
                ("{event=\"rejected\"}", self.jobs_rejected),
                ("{event=\"shed\"}", self.jobs_shed),
                ("{event=\"expired\"}", self.jobs_expired),
                ("{event=\"cancelled\"}", self.jobs_cancelled),
                ("{event=\"completed\"}", self.jobs_completed),
            ],
        );
        counter_family(
            &mut out,
            "fastsc_queue_retries_total",
            "Transient failures re-queued for another attempt.",
            &[("", self.retries)],
        );
        let compile_series: Vec<(String, &HistogramSnapshot)> = STRATEGY_LABELS
            .iter()
            .zip(self.compile_duration.iter())
            .filter(|(_, h)| h.count > 0)
            .map(|(label, h)| (format!("strategy=\"{label}\""), h))
            .collect();
        let compile_refs: Vec<(&str, &HistogramSnapshot)> =
            compile_series.iter().map(|(l, h)| (l.as_str(), *h)).collect();
        histogram_labeled(
            &mut out,
            "fastsc_compile_duration_seconds",
            "Real compile latency by strategy (cache hits excluded).",
            &compile_refs,
        );
        histogram(
            &mut out,
            "fastsc_smt_solve_seconds",
            "SMT frequency-solve time (memo misses only).",
            &[("", &self.smt_solve)],
        );
        counter_family(
            &mut out,
            "fastsc_smt_memo_total",
            "SMT frequency-memo lookups by outcome.",
            &[
                ("{result=\"hit\"}", self.smt_memo_hits),
                ("{result=\"solve\"}", self.smt_solves),
            ],
        );
        counter_family(
            &mut out,
            "fastsc_cache_requests_total",
            "Schedule-cache lookups by outcome (coalesced hits included).",
            &[("{result=\"hit\"}", self.cache_hits), ("{result=\"miss\"}", self.cache_misses)],
        );
        counter_family(
            &mut out,
            "fastsc_store_requests_total",
            "Persistent artifact-store lookups by outcome.",
            &[("{result=\"hit\"}", self.store_hits), ("{result=\"miss\"}", self.store_misses)],
        );
        counter_family(
            &mut out,
            "fastsc_store_bytes_written_total",
            "Bytes appended to the on-disk artifact store.",
            &[("", self.store_bytes_written)],
        );
        counter_family(
            &mut out,
            "fastsc_breaker_transitions_total",
            "Circuit-breaker state transitions by destination state.",
            &[
                ("{to=\"open\"}", self.breaker_opened),
                ("{to=\"half_open\"}", self.breaker_half_open),
                ("{to=\"closed\"}", self.breaker_closed),
            ],
        );
        counter_family(
            &mut out,
            "fastsc_server_bytes_total",
            "Frame bytes moved over client sockets.",
            &[
                ("{direction=\"read\"}", self.bytes_read),
                ("{direction=\"written\"}", self.bytes_written),
            ],
        );
        counter_family(
            &mut out,
            "fastsc_server_connections_total",
            "Client connections accepted.",
            &[("", self.connections)],
        );
        out
    }
}

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn counter_family(out: &mut String, name: &str, help: &str, series: &[(&str, u64)]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (labels, value) in series {
        let _ = writeln!(out, "{name}{labels} {value}");
    }
}

fn gauge(out: &mut String, name: &str, help: &str, value: i64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

fn histogram(out: &mut String, name: &str, help: &str, series: &[(&str, &HistogramSnapshot)]) {
    histogram_labeled(out, name, help, series);
}

/// Emits one histogram family; each entry in `series` is a
/// comma-joinable label fragment (no braces) or empty for unlabeled.
fn histogram_labeled(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(&str, &HistogramSnapshot)],
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (labels, snap) in series {
        let sep = if labels.is_empty() { String::new() } else { format!("{labels},") };
        for (bound_ns, cumulative) in &snap.buckets {
            let _ = writeln!(
                out,
                "{name}_bucket{{{sep}le=\"{:?}\"}} {cumulative}",
                seconds(*bound_ns)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{sep}le=\"+Inf\"}} {}", snap.count);
        let wrap = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        let _ = writeln!(out, "{name}_sum{wrap} {:?}", seconds(snap.sum_ns));
        let _ = writeln!(out, "{name}_count{wrap} {}", snap.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that record or toggle the global enabled flag —
    /// the flag is process-wide, so a disabling test would drop a
    /// concurrent test's observations.
    static ENABLED_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        ENABLED_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_and_gauges_move() {
        let _serial = lock();
        let m = Metrics::new();
        m.jobs_admitted.inc();
        m.jobs_admitted.add(2);
        assert_eq!(m.jobs_admitted.get(), 3);
        m.queue_depth.inc();
        m.queue_depth.inc();
        m.queue_depth.dec();
        assert_eq!(m.queue_depth.get(), 1);
        m.queue_depth.set(7);
        assert_eq!(m.queue_depth.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_snapshot() {
        let _serial = lock();
        let h = Histogram::new();
        h.observe(Duration::from_micros(2)); // ≤ 5µs bucket
        h.observe(Duration::from_micros(2));
        h.observe(Duration::from_millis(2)); // ≤ 5ms bucket
        h.observe(Duration::from_secs(60)); // overflow (+Inf only)
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        let at = |bound: u64| snap.buckets.iter().find(|(b, _)| *b == bound).unwrap().1;
        assert_eq!(at(1_000), 0);
        assert_eq!(at(5_000), 2);
        assert_eq!(at(5_000_000), 3);
        assert_eq!(at(10_000_000_000), 3, "60s overflows every finite bucket");
        assert_eq!(snap.sum_ns, 2_000 + 2_000 + 2_000_000 + 60_000_000_000);
    }

    #[test]
    fn exact_bound_lands_in_its_bucket() {
        let _serial = lock();
        let h = Histogram::new();
        h.observe_ns(1_000);
        assert_eq!(h.snapshot().buckets[0], (1_000, 1), "le is inclusive");
    }

    #[test]
    fn disabled_registry_drops_observations() {
        let _serial = lock();
        let m = Metrics::new();
        set_metrics_enabled(false);
        m.jobs_admitted.inc();
        m.queue_wait.observe(Duration::from_millis(1));
        m.queue_depth.inc();
        set_metrics_enabled(true);
        assert_eq!(m.jobs_admitted.get(), 0);
        assert_eq!(m.queue_wait.count(), 0);
        assert_eq!(m.queue_depth.get(), 0);
        m.jobs_admitted.inc();
        assert_eq!(m.jobs_admitted.get(), 1);
    }

    #[test]
    fn prometheus_text_has_expected_families() {
        let _serial = lock();
        let m = Metrics::new();
        m.jobs_admitted.add(5);
        m.cache_hits.add(2);
        m.cache_misses.add(3);
        m.queue_wait.observe(Duration::from_micros(30));
        m.compile_duration[4].observe(Duration::from_micros(80));
        m.bytes_read.add(1024);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE fastsc_queue_wait_seconds histogram"));
        assert!(text.contains("fastsc_queue_jobs_total{event=\"admitted\"} 5"));
        assert!(text.contains("fastsc_cache_requests_total{result=\"hit\"} 2"));
        assert!(text.contains(
            "fastsc_compile_duration_seconds_bucket{strategy=\"color_dynamic\",le=\"+Inf\"} 1"
        ));
        assert!(
            !text.contains("strategy=\"baseline_n\""),
            "unused strategies are omitted from exposition"
        );
        assert!(text.contains("fastsc_server_bytes_total{direction=\"read\"} 1024"));
        m.store_hits.add(4);
        m.store_bytes_written.add(256);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("fastsc_store_requests_total{result=\"hit\"} 4"));
        assert!(text.contains("fastsc_store_requests_total{result=\"miss\"} 0"));
        assert!(text.contains("fastsc_store_bytes_written_total 256"));
        assert!(text.contains("fastsc_queue_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("fastsc_queue_wait_seconds_count 1"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.split(' ').count() == 2, "bad line: {line}");
        }
    }

    #[test]
    fn strategy_labels_cover_all_stable_codes() {
        assert_eq!(STRATEGY_LABELS.len(), 5);
        let unique: std::collections::HashSet<&str> = STRATEGY_LABELS.iter().copied().collect();
        assert_eq!(unique.len(), 5);
    }
}

//! Per-job span trees: a [`Tracer`] per traced job, RAII
//! [`SpanGuard`]s for in-scope phases, retroactive recording for
//! cross-thread intervals (queue wait is only known at dispatch), and
//! a thread-local engine context so compile-internal phases attach to
//! the right job without the engine ever seeing a tracer handle.
//!
//! Timestamps are nanoseconds relative to the tracer's epoch (its
//! creation instant), taken from the monotonic clock — a finished
//! [`SpanTree`] is therefore self-consistent even across threads.
//! Recording never blocks compilation semantics: spans are observations
//! only, and the whole layer is behind one relaxed-atomic branch
//! ([`tracing_active`]) when no tracer is live.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Identifier of one span within its [`Tracer`] (dense, in allocation
/// order; a parent's id is always smaller than its children's).
pub type SpanId = u32;

/// One typed span-attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (e.g. a policy or strategy name).
    Str(String),
    /// An unsigned integer attribute (e.g. a shard index or wave count).
    U64(u64),
    /// A float attribute (e.g. a backoff in fractional milliseconds).
    F64(f64),
    /// A boolean attribute (e.g. `cache_hit`, `memo_hit`).
    Bool(bool),
}

impl AttrValue {
    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One closed span as recorded into the tracer, before tree assembly.
#[derive(Debug, Clone)]
struct SpanRecord {
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Live tracers in the process. The **zero-cost-off** gate: every
/// recording entry point first branches on this relaxed load, so a
/// process that never traces pays one predictable-not-taken branch.
static ACTIVE_TRACERS: AtomicUsize = AtomicUsize::new(0);

/// Whether any [`Tracer`] is currently live anywhere in the process
/// (relaxed load; the fast-path branch recording code gates on).
pub fn tracing_active() -> bool {
    ACTIVE_TRACERS.load(Ordering::Relaxed) != 0
}

/// The process-global default for whether an individual job gets
/// traced when its submitter did not explicitly ask (see
/// [`set_trace_mode`] / [`should_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Only explicitly requested jobs are traced (the default).
    Off,
    /// Every job is traced.
    On,
    /// Every `n`-th job is traced — decided by a deterministic atomic
    /// counter, **never** a clock or RNG, so sampling can't perturb
    /// compile determinism. `Sampled(0)` and `Sampled(1)` trace every
    /// job.
    Sampled(u32),
}

const MODE_OFF: u32 = 0;
const MODE_ON: u32 = 1;
const MODE_SAMPLED: u32 = 2;

static TRACE_MODE: AtomicU32 = AtomicU32::new(MODE_OFF);
static TRACE_EVERY: AtomicU32 = AtomicU32::new(0);
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Sets the process-global [`TraceMode`]. Takes effect for subsequent
/// [`should_trace`] decisions; jobs that explicitly requested a trace
/// are traced regardless.
pub fn set_trace_mode(mode: TraceMode) {
    match mode {
        TraceMode::Off => TRACE_MODE.store(MODE_OFF, Ordering::Relaxed),
        TraceMode::On => TRACE_MODE.store(MODE_ON, Ordering::Relaxed),
        TraceMode::Sampled(n) => {
            TRACE_EVERY.store(n, Ordering::Relaxed);
            TRACE_MODE.store(MODE_SAMPLED, Ordering::Relaxed);
        }
    }
}

/// The current process-global [`TraceMode`].
pub fn trace_mode() -> TraceMode {
    match TRACE_MODE.load(Ordering::Relaxed) {
        MODE_ON => TraceMode::On,
        MODE_SAMPLED => TraceMode::Sampled(TRACE_EVERY.load(Ordering::Relaxed)),
        _ => TraceMode::Off,
    }
}

/// Decides whether the next job should be traced under the global
/// [`TraceMode`]. `Sampled(n)` advances a shared counter and traces
/// every `n`-th call — deterministic with respect to the submission
/// stream, so a replayed stream samples the same jobs.
pub fn should_trace() -> bool {
    match TRACE_MODE.load(Ordering::Relaxed) {
        MODE_ON => true,
        MODE_SAMPLED => {
            let every = u64::from(TRACE_EVERY.load(Ordering::Relaxed).max(1));
            TRACE_COUNTER.fetch_add(1, Ordering::Relaxed).is_multiple_of(every)
        }
        _ => false,
    }
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Drop for TracerInner {
    fn drop(&mut self) {
        ACTIVE_TRACERS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Records one job's span tree. Cheap to clone (an [`Arc`]); every
/// clone feeds the same tree, so the queue, the router, and the engine
/// (via [`install_engine_trace`]) can all contribute spans to one job.
///
/// ```
/// use fastsc_telemetry::span::Tracer;
///
/// let tracer = Tracer::new();
/// let mut job = tracer.span("job", None);
/// job.attr("shard", 2usize);
/// let compile = tracer.span("compile", Some(job.id()));
/// drop(compile);
/// drop(job);
/// let tree = tracer.finish();
/// let root = tree.root().unwrap();
/// assert_eq!(root.name, "job");
/// assert_eq!(root.children[0].name, "compile");
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer whose epoch (timestamp zero) is now.
    pub fn new() -> Self {
        ACTIVE_TRACERS.fetch_add(1, Ordering::Relaxed);
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU32::new(0),
                // A typical job records ~a dozen spans; starting with
                // room for them keeps the recording path realloc-free.
                spans: Mutex::new(Vec::with_capacity(16)),
            }),
        }
    }

    /// The tracer's epoch: the instant all span timestamps are relative
    /// to.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    fn ns_since_epoch(&self, t: Instant) -> u64 {
        let d = t.checked_duration_since(self.inner.epoch).unwrap_or(Duration::ZERO);
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    fn alloc_id(&self) -> SpanId {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, record: SpanRecord) {
        self.inner.spans.lock().unwrap_or_else(PoisonError::into_inner).push(record);
    }

    /// Opens a span that closes (and records itself) when the returned
    /// guard drops. `parent` is `None` for the root.
    pub fn span(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            id: self.alloc_id(),
            parent,
            name,
            start: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Records a span retroactively from explicit instants — for
    /// intervals observed after the fact, like queue wait (known only
    /// when the dispatcher drains the job) or backoff sleeps. Instants
    /// before the epoch clamp to 0. Returns the new span's id.
    pub fn record(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start: Instant,
        end: Instant,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanId {
        let id = self.alloc_id();
        let start_ns = self.ns_since_epoch(start);
        let record = SpanRecord {
            id,
            parent,
            name,
            start_ns,
            end_ns: self.ns_since_epoch(end).max(start_ns),
            attrs,
        };
        self.push(record);
        id
    }

    /// Assembles everything recorded so far into a [`SpanTree`] and
    /// clears the buffer. Spans whose guard is still open at this point
    /// are absent from the tree (their records don't exist yet).
    pub fn finish(&self) -> SpanTree {
        let records = std::mem::take(
            &mut *self.inner.spans.lock().unwrap_or_else(PoisonError::into_inner),
        );
        build_tree(records)
    }
}

/// A tracer plus the span new work should attach under — the handle a
/// job carries across layers (queue → router → engine) so each layer
/// can add children without knowing the tree above it.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    /// The job's tracer.
    pub tracer: Tracer,
    /// The span id children should attach under.
    pub parent: SpanId,
}

impl TraceHandle {
    /// A handle attaching under `parent`.
    pub fn new(tracer: Tracer, parent: SpanId) -> Self {
        TraceHandle { tracer, parent }
    }

    /// Opens a child span under this handle's parent.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.tracer.span(name, Some(self.parent))
    }

    /// A handle for children of `span` (typically one of this handle's
    /// own children).
    pub fn under(&self, span: &SpanGuard) -> TraceHandle {
        TraceHandle { tracer: self.tracer.clone(), parent: span.id() }
    }

    /// Installs this handle as the current thread's engine trace
    /// context (see [`install_engine_trace`]).
    pub fn install(&self) -> EngineTraceGuard {
        install_engine_trace(&self.tracer, self.parent)
    }
}

/// An open span: closes and records itself on drop. Obtained from
/// [`Tracer::span`].
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanGuard {
    /// The span's id — pass as `parent` to create children.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches a typed attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        self.attrs.push((key, value.into()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let start_ns = self.tracer.ns_since_epoch(self.start);
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns,
            end_ns: self.tracer.ns_since_epoch(Instant::now()).max(start_ns),
            attrs: std::mem::take(&mut self.attrs),
        };
        self.tracer.push(record);
    }
}

/// One node of a finished span tree: a named, attributed interval with
/// properly nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span's name (e.g. `"compile"`, `"smt"`). Names come from a
    /// fixed vocabulary, so they stay `&'static str` end to end — tree
    /// assembly allocates nothing per name.
    pub name: &'static str,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the tracer's epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Typed attributes, in attachment order (static keys, typed
    /// values).
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The span's duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns - self.start_ns)
    }

    /// The first attribute named `key`, if any.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Depth-first search for the first descendant (or self) named
    /// `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total number of spans in this subtree, including self.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }
}

/// A finished, assembled span tree (see [`Tracer::finish`]). A
/// well-formed job trace has exactly one root.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanTree {
    /// Root spans (spans with no recorded parent), ordered by start
    /// time.
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// The single root, when the tree has exactly one (the well-formed
    /// case); the first root otherwise.
    pub fn root(&self) -> Option<&SpanNode> {
        self.roots.first()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total number of spans across all roots.
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(SpanNode::span_count).sum()
    }

    /// Renders the tree as Chrome `trace_event` JSON (complete `"X"`
    /// events, timestamps in fractional microseconds) — load the
    /// string as a file in Perfetto / `chrome://tracing` to see the
    /// job's flame chart.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for root in &self.roots {
            write_chrome_events(&mut out, root, &mut first);
        }
        out.push_str("]}");
        out
    }
}

fn write_chrome_events(out: &mut String, node: &SpanNode, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let ts = node.start_ns as f64 / 1_000.0;
    let dur = (node.end_ns - node.start_ns) as f64 / 1_000.0;
    let _ = write!(
        out,
        "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{ts:?},\"dur\":{dur:?}",
        escape_json(node.name)
    );
    if !node.attrs.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in node.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", escape_json(key));
            match value {
                AttrValue::Str(s) => out.push_str(&escape_json(s)),
                AttrValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                AttrValue::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v:?}");
                }
                AttrValue::F64(_) => out.push_str("null"),
                AttrValue::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    for child in &node.children {
        write_chrome_events(out, child, first);
    }
}

/// JSON string literal (quotes included) with the mandatory escapes.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Assembles flat records into nested nodes. Parents always carry
/// smaller ids than their children (ids are allocated at open, and a
/// child needs its parent's id to exist), so one reverse pass attaches
/// every subtree; a record pointing at an unknown or not-smaller
/// parent id becomes a root rather than being dropped.
fn build_tree(mut records: Vec<SpanRecord>) -> SpanTree {
    records.sort_by_key(|r| r.id);
    // Ids are sorted, so a Vec + binary search beats a HashMap here:
    // no hashing, no per-tree table allocation.
    let ids: Vec<SpanId> = records.iter().map(|r| r.id).collect();
    let parents: Vec<Option<usize>> = records
        .iter()
        .enumerate()
        .map(|(i, r)| match r.parent.and_then(|p| ids.binary_search(&p).ok()) {
            Some(p) if p < i => Some(p),
            _ => None,
        })
        .collect();
    let mut nodes: Vec<Option<SpanNode>> = records
        .into_iter()
        .map(|r| {
            Some(SpanNode {
                name: r.name,
                start_ns: r.start_ns,
                end_ns: r.end_ns,
                attrs: r.attrs,
                children: Vec::new(),
            })
        })
        .collect();
    // Children always sit at larger indices than their parent, so a
    // single reverse pass sees every node after all of its children
    // have been attached: sort them, then hand the finished subtree up.
    let mut roots: Vec<SpanNode> = Vec::new();
    for i in (0..nodes.len()).rev() {
        let mut node = nodes[i].take().expect("each node taken once");
        node.children.sort_by_key(|k| k.start_ns);
        match parents[i] {
            Some(p) => nodes[p].as_mut().expect("parent not yet taken").children.push(node),
            None => roots.push(node),
        }
    }
    roots.sort_by_key(|r| r.start_ns);
    SpanTree { roots }
}

// ---------------------------------------------------------------------
// Thread-local engine context: compile-internal phases.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct LocalTrace {
    tracer: Tracer,
    /// Open phase chain; the bottom entry is the installed parent span.
    stack: Vec<SpanId>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalTrace>> = const { RefCell::new(None) };
}

/// Installs `tracer` as the current thread's engine trace context:
/// until the returned guard drops, [`phase`] spans on this thread
/// record into `tracer` under `parent`. Installations nest (the guard
/// restores the previous context), and the context is thread-local —
/// work fanned out to other threads (e.g. partition regions on the
/// rayon pool) intentionally records nothing.
pub fn install_engine_trace(tracer: &Tracer, parent: SpanId) -> EngineTraceGuard {
    let prev = LOCAL.with(|l| {
        l.borrow_mut().replace(LocalTrace { tracer: tracer.clone(), stack: vec![parent] })
    });
    EngineTraceGuard { prev }
}

/// Uninstalls the engine trace context installed by
/// [`install_engine_trace`] when dropped, restoring the previous one.
#[derive(Debug)]
pub struct EngineTraceGuard {
    prev: Option<LocalTrace>,
}

impl Drop for EngineTraceGuard {
    fn drop(&mut self) {
        LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
    }
}

/// Opens an engine phase span under the current thread's installed
/// trace context (see [`install_engine_trace`]). When no tracer is
/// live anywhere ([`tracing_active`] false) this is one relaxed-atomic
/// branch; when no context is installed on this thread it is a cheap
/// thread-local check. Phases nest: a `phase` opened while another is
/// open becomes its child.
pub fn phase(name: &'static str) -> PhaseGuard {
    if !tracing_active() {
        return PhaseGuard(None);
    }
    LOCAL.with(|l| {
        let mut borrow = l.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return PhaseGuard(None);
        };
        let parent = ctx.stack.last().copied();
        let id = ctx.tracer.alloc_id();
        ctx.stack.push(id);
        PhaseGuard(Some(PhaseInner {
            tracer: ctx.tracer.clone(),
            id,
            parent,
            name,
            start: Instant::now(),
            attrs: Vec::new(),
        }))
    })
}

#[derive(Debug)]
struct PhaseInner {
    tracer: Tracer,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// An open engine phase (see [`phase`]); records itself on drop, or
/// does nothing at all when tracing was off at open.
#[derive(Debug)]
pub struct PhaseGuard(Option<PhaseInner>);

impl PhaseGuard {
    /// Whether this phase is actually recording — gate any non-trivial
    /// attribute computation on this.
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches a typed attribute (no-op when inactive).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(inner) = &mut self.0 {
            inner.attrs.push((key, value.into()));
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        LOCAL.with(|l| {
            if let Some(ctx) = l.borrow_mut().as_mut() {
                if ctx.stack.last() == Some(&inner.id) {
                    ctx.stack.pop();
                }
            }
        });
        let start_ns = inner.tracer.ns_since_epoch(inner.start);
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            start_ns,
            end_ns: inner.tracer.ns_since_epoch(Instant::now()).max(start_ns),
            attrs: inner.attrs,
        };
        inner.tracer.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_build_a_nested_tree() {
        let tracer = Tracer::new();
        let mut job = tracer.span("job", None);
        job.attr("shard", 3usize);
        let compile = tracer.span("compile", Some(job.id()));
        let smt = tracer.span("smt", Some(compile.id()));
        drop(smt);
        let coloring = tracer.span("coloring", Some(compile.id()));
        drop(coloring);
        drop(compile);
        drop(job);
        let tree = tracer.finish();
        assert_eq!(tree.roots.len(), 1);
        let root = tree.root().unwrap();
        assert_eq!(root.name, "job");
        assert_eq!(root.attr("shard").and_then(AttrValue::as_u64), Some(3));
        assert_eq!(root.children.len(), 1);
        let compile = &root.children[0];
        assert_eq!(compile.name, "compile");
        let names: Vec<&str> = compile.children.iter().map(|c| c.name).collect();
        assert_eq!(names, ["smt", "coloring"]);
        assert_eq!(tree.span_count(), 4);
    }

    #[test]
    fn children_are_contained_and_ordered() {
        let tracer = Tracer::new();
        let job = tracer.span("job", None);
        let a = tracer.span("a", Some(job.id()));
        drop(a);
        let b = tracer.span("b", Some(job.id()));
        drop(b);
        drop(job);
        let tree = tracer.finish();
        let root = tree.root().unwrap();
        assert_eq!(root.children.len(), 2);
        let (a, b) = (&root.children[0], &root.children[1]);
        assert_eq!((a.name, b.name), ("a", "b"));
        // Nested and non-overlapping.
        assert!(root.start_ns <= a.start_ns && a.end_ns <= root.end_ns);
        assert!(a.end_ns <= b.start_ns && b.end_ns <= root.end_ns);
    }

    #[test]
    fn retroactive_record_clamps_to_epoch() {
        let before = Instant::now();
        let tracer = Tracer::new();
        let end = Instant::now();
        let id = tracer.record("queue_wait", None, before, end, Vec::new());
        assert_eq!(id, 0);
        let tree = tracer.finish();
        assert_eq!(tree.root().unwrap().start_ns, 0);
    }

    #[test]
    fn active_count_tracks_tracer_lifetime() {
        let baseline = tracing_active();
        let tracer = Tracer::new();
        assert!(tracing_active());
        let clone = tracer.clone();
        drop(tracer);
        assert!(tracing_active(), "a live clone keeps the process active");
        drop(clone);
        // Other tests may hold tracers concurrently; only assert the
        // no-other-tracer case.
        if !baseline {
            assert!(!tracing_active() || ACTIVE_TRACERS.load(Ordering::Relaxed) > 0);
        }
    }

    #[test]
    fn phase_without_context_is_inert() {
        let mut p = phase("compile");
        assert!(!p.active());
        p.attr("ignored", 1u64);
        drop(p);
    }

    #[test]
    fn phases_nest_under_installed_context() {
        let tracer = Tracer::new();
        let job = tracer.span("job", None);
        {
            let _ctx = install_engine_trace(&tracer, job.id());
            let mut compile = phase("compile");
            assert!(compile.active());
            compile.attr("strategy", "color_dynamic");
            let smt = phase("smt");
            drop(smt);
            drop(compile);
        }
        assert!(!phase("after").active(), "uninstall restores the inert state");
        drop(job);
        let tree = tracer.finish();
        let root = tree.root().unwrap();
        let compile = root.find("compile").expect("compile span");
        assert_eq!(compile.attr("strategy").and_then(AttrValue::as_str), Some("color_dynamic"));
        assert_eq!(compile.children[0].name, "smt");
    }

    #[test]
    fn sampled_mode_is_a_deterministic_counter() {
        set_trace_mode(TraceMode::Sampled(3));
        let hits: Vec<bool> = (0..6).map(|_| should_trace()).collect();
        assert_eq!(hits.iter().filter(|h| **h).count(), 2);
        set_trace_mode(TraceMode::Off);
        assert!(!should_trace());
        set_trace_mode(TraceMode::On);
        assert!(should_trace());
        set_trace_mode(TraceMode::Off);
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let tracer = Tracer::new();
        let mut job = tracer.span("job \"quoted\"", None);
        job.attr("cache_hit", true);
        job.attr("policy", "round\nrobin");
        job.attr("waves", 7u64);
        job.attr("backoff_ms", 1.5f64);
        drop(job);
        let json = tracer.finish().to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"cache_hit\":true"));
        assert!(json.contains("\"waves\":7"));
    }

    #[test]
    fn orphan_parent_promotes_to_root() {
        let tracer = Tracer::new();
        let now = Instant::now();
        tracer.record("dangling", Some(999), now, now, Vec::new());
        let tree = tracer.finish();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.root().unwrap().name, "dangling");
    }
}

//! Observability for the FastSC serving stack: per-job span trees and a
//! process-global metrics registry, std-only with zero dependencies.
//!
//! Two halves, threaded through every layer (engine → batch → sharded
//! service → queue → TCP server):
//!
//! * [`span`] — a lightweight [`Tracer`]/[`SpanGuard`] API that records
//!   one tree of timed, attributed spans per job
//!   (`job → admission/queue_wait/route/attempt{compile{…}}/respond`),
//!   exportable as a nested [`SpanTree`] or as Chrome `trace_event`
//!   JSON that opens directly in Perfetto. Engine-internal phases
//!   (context build, SMT, coloring, partition, stitch) attach through a
//!   thread-local context installed around the compile, so the engine
//!   itself never threads tracer handles through its hot loop.
//! * [`metrics`] — fixed-instrument atomic counters, gauges, and
//!   fixed-bucket histograms covering queue wait, per-strategy compile
//!   latency, SMT solve time, retries, breaker transitions, cache
//!   hits, and bytes on the wire, snapshot-able for embedders
//!   ([`MetricsSnapshot`]) and renderable as Prometheus text
//!   exposition format for scrapes.
//!
//! **Zero-cost when off** is a hard requirement: the disabled tracing
//! path is a single branch on a relaxed atomic ([`tracing_active`]),
//! and nothing recorded here may influence compile decisions — the
//! determinism suite holds bit-identical with tracing on, off, and
//! sampled. Sampling ([`TraceMode::Sampled`]) is a deterministic
//! counter, never a clock or RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod span;

pub use metrics::{
    metrics, metrics_enabled, set_metrics_enabled, Counter, Gauge, Histogram,
    HistogramSnapshot, Metrics, MetricsSnapshot, STRATEGY_LABELS,
};
pub use span::{
    install_engine_trace, phase, set_trace_mode, should_trace, trace_mode, tracing_active,
    AttrValue, EngineTraceGuard, PhaseGuard, SpanGuard, SpanId, SpanNode, SpanTree,
    TraceHandle, TraceMode, Tracer,
};

//! Property-based tests for the benchmark generators.

use fastsc_ir::layering;
use fastsc_workloads::{
    bv_with_hidden_string, ising_with_steps, qaoa_with_rounds, qgan_with_layers, xeb, Benchmark,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bv_counts_match_hidden_weight(
        hidden in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let c = bv_with_hidden_string(&hidden);
        prop_assert_eq!(c.n_qubits(), hidden.len() + 1);
        let weight = hidden.iter().filter(|&&b| b).count();
        prop_assert_eq!(c.two_qubit_count(), weight);
    }

    #[test]
    fn qaoa_structure_scales(n in 2usize..12, rounds in 1usize..4, seed in 0u64..100) {
        let c = qaoa_with_rounds(n, rounds, seed);
        prop_assert_eq!(c.n_qubits(), n);
        // Per round: 2 CNOTs per problem edge; edges <= n(n-1)/2.
        prop_assert!(c.two_qubit_count() <= rounds * n * (n - 1));
        prop_assert_eq!(c.two_qubit_count() % (2 * rounds), 0);
        // Mixer: one Rx per qubit per round.
        prop_assert_eq!(c.gate_counts().get("rx").copied().unwrap_or(0), n * rounds);
    }

    #[test]
    fn ising_depth_independent_of_width(n in 4usize..16, steps in 1usize..5) {
        let c = ising_with_steps(n, steps);
        let per_step = layering::asap_layers(&ising_with_steps(n, 1)).len();
        let total = layering::asap_layers(&c).len();
        // Depth grows linearly with steps, not with n.
        prop_assert!(total <= per_step * steps + steps);
        prop_assert_eq!(c.n_qubits(), n);
    }

    #[test]
    fn qgan_counts(n in 2usize..14, layers in 1usize..5, seed in 0u64..50) {
        let c = qgan_with_layers(n, layers, seed);
        prop_assert_eq!(c.two_qubit_count(), layers * (n - 1));
        prop_assert_eq!(c.gate_counts()["rz"], layers * n);
    }

    #[test]
    fn xeb_every_cycle_covers_all_qubits(side in 2usize..5, p in 1usize..6, seed in 0u64..50) {
        let n = side * side;
        let c = xeb(n, p, seed);
        prop_assert_eq!(c.single_qubit_count(), n * p, "one 1q gate per qubit per cycle");
        // Every two-qubit gate is a mesh edge.
        let mesh = fastsc_graph::topology::grid(side, side);
        for inst in c.instructions() {
            if let Some((a, b)) = inst.qubit_pair() {
                prop_assert!(mesh.has_edge(a, b));
            }
        }
    }

    #[test]
    fn all_suite_members_deterministic(seed in 0u64..30) {
        for b in [Benchmark::Bv(9), Benchmark::Qaoa(4), Benchmark::Ising(4),
                  Benchmark::Qgan(9), Benchmark::Xeb(9, 5)] {
            prop_assert_eq!(b.build(seed), b.build(seed));
        }
    }
}

//! Bernstein–Vazirani (paper Table II, Bernstein & Vazirani 1997).
//!
//! Finds a hidden bit string `s` with a single oracle query. The circuit
//! uses `n - 1` data qubits and one ancilla (the last qubit):
//!
//! 1. `H` on every data qubit; `X` then `H` on the ancilla (prepares `|->`);
//! 2. the oracle: `CNOT(data_i -> ancilla)` for every `s_i = 1`;
//! 3. `H` on every data qubit — the data register now reads `s` exactly.
//!
//! All oracle `CNOT`s share the ancilla, so BV has essentially no two-qubit
//! parallelism; in the paper's Fig. 9 it is the benchmark where even naive
//! strategies do comparatively well.

use fastsc_ir::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds `BV(n)` (`n >= 2`) with a random non-zero hidden string drawn
/// from `seed`.
///
/// # Panics
///
/// Panics if `n < 2` (one data qubit plus the ancilla is the minimum).
pub fn bv(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "BV needs at least 2 qubits, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let data = n - 1;
    let mut hidden = vec![false; data];
    while hidden.iter().all(|&b| !b) {
        for bit in &mut hidden {
            *bit = rng.gen::<bool>();
        }
    }
    bv_with_hidden_string(&hidden)
}

/// Builds Bernstein–Vazirani for an explicit hidden string; the circuit
/// has `hidden.len() + 1` qubits (ancilla last).
///
/// # Panics
///
/// Panics if `hidden` is empty.
pub fn bv_with_hidden_string(hidden: &[bool]) -> Circuit {
    assert!(!hidden.is_empty(), "hidden string must be non-empty");
    let data = hidden.len();
    let ancilla = data;
    let mut c = Circuit::new(data + 1);
    for q in 0..data {
        c.push1(Gate::H, q).expect("in range");
    }
    c.push1(Gate::X, ancilla).expect("in range");
    c.push1(Gate::H, ancilla).expect("in range");
    for (q, &bit) in hidden.iter().enumerate() {
        if bit {
            c.push2(Gate::Cnot, q, ancilla).expect("in range");
        }
    }
    for q in 0..data {
        c.push1(Gate::H, q).expect("in range");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsc_ir::math::{C64, ZERO};
    use fastsc_ir::unitary::{apply_circuit, probability};

    #[test]
    fn oracle_size_matches_hidden_weight() {
        let c = bv_with_hidden_string(&[true, false, true, true]);
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(c.two_qubit_count(), 3);
        assert_eq!(c.gate_counts()["h"], 9); // 2*4 data + 1 ancilla
    }

    #[test]
    fn recovers_the_hidden_string_exactly() {
        // Simulate: after the circuit, measuring the data register yields
        // the hidden string with probability 1.
        for hidden in [[true, false, true], [false, false, true], [true, true, true]] {
            let c = bv_with_hidden_string(&hidden);
            let n = c.n_qubits();
            let mut state = vec![ZERO; 1 << n];
            state[0] = C64::real(1.0);
            apply_circuit(&mut state, &c);
            // Qubit 0 is the most significant bit; the ancilla (last
            // qubit) is in |->, so both its basis values carry 1/2 each.
            let mut data_index = 0usize;
            for (i, &bit) in hidden.iter().enumerate() {
                if bit {
                    data_index |= 1 << (n - 1 - i);
                }
            }
            let p = probability(&state, data_index) + probability(&state, data_index | 1);
            assert!((p - 1.0).abs() < 1e-9, "hidden {hidden:?}: p = {p}");
        }
    }

    #[test]
    fn random_hidden_string_is_nonzero() {
        for seed in 0..20 {
            let c = bv(6, seed);
            assert!(c.two_qubit_count() >= 1, "seed {seed} produced the zero string");
            assert!(c.two_qubit_count() <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 qubits")]
    fn rejects_single_qubit() {
        let _ = bv(1, 0);
    }
}

//! QAOA for MAX-CUT on Erdős–Rényi graphs (paper Table II, Farhi et al.).
//!
//! One QAOA round applies the cost unitary
//! `exp(-i gamma/2 sum_(u,v) Z_u Z_v)` — a `CNOT . Rz . CNOT` block per
//! problem-graph edge — followed by the mixer `Rx(2 beta)` on every qubit.
//! Problem edges come from `G(n, 0.5)` and are generally *not*
//! device-adjacent, so QAOA exercises the compiler's router.

use fastsc_graph::topology;
use fastsc_ir::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed variational angles; specific values do not affect scheduling
/// structure, only the `Rz`/`Rx` rotation magnitudes.
const GAMMA: f64 = 0.7;
const BETA: f64 = 0.35;

/// Builds one round of MAX-CUT QAOA on an Erdős–Rényi `G(n, 0.5)` graph
/// sampled from `seed`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn qaoa(n: usize, seed: u64) -> Circuit {
    qaoa_with_rounds(n, 1, seed)
}

/// Builds `rounds` QAOA rounds.
///
/// # Panics
///
/// Panics if `n < 2` or `rounds == 0`.
pub fn qaoa_with_rounds(n: usize, rounds: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "QAOA needs at least 2 qubits, got {n}");
    assert!(rounds > 0, "QAOA needs at least one round");
    let mut rng = StdRng::seed_from_u64(seed);
    let problem = topology::erdos_renyi(n, 0.5, &mut rng);

    let mut c = Circuit::new(n);
    // |+>^n initial state.
    for q in 0..n {
        c.push1(Gate::H, q).expect("in range");
    }
    for round in 0..rounds {
        let round_scale = (round + 1) as f64 / rounds as f64;
        for (_, (u, v)) in problem.edges() {
            c.push2(Gate::Cnot, u, v).expect("in range");
            c.push1(Gate::Rz(2.0 * GAMMA * round_scale), v).expect("in range");
            c.push2(Gate::Cnot, u, v).expect("in range");
        }
        for q in 0..n {
            c.push1(Gate::Rx(2.0 * BETA * (1.0 - round_scale * 0.5)), q).expect("in range");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts_match_problem_graph() {
        let n = 8;
        let seed = 5;
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = topology::erdos_renyi(n, 0.5, &mut rng).edge_count();
        let c = qaoa(n, seed);
        assert_eq!(c.two_qubit_count(), 2 * edges);
        assert_eq!(c.gate_counts()["rz"], edges);
        assert_eq!(c.gate_counts()["rx"], n);
        assert_eq!(c.gate_counts()["h"], n);
    }

    #[test]
    fn rounds_scale_gate_count() {
        let one = qaoa_with_rounds(6, 1, 9);
        let three = qaoa_with_rounds(6, 3, 9);
        assert_eq!(three.two_qubit_count(), 3 * one.two_qubit_count());
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(qaoa(7, 2), qaoa(7, 2));
        // Different seeds give different problem graphs (w.h.p.).
        assert_ne!(qaoa(7, 2).two_qubit_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn rejects_zero_rounds() {
        let _ = qaoa_with_rounds(4, 0, 0);
    }
}

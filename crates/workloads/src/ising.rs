//! Trotterized linear Ising-chain simulation (paper Table II, after
//! Barends et al., "Digitized adiabatic quantum computing", 2016).
//!
//! Each Trotter step applies `ZZ` interactions on the even chain pairs,
//! then the odd pairs, then a transverse-field `Rx` on every spin. The
//! even/odd pair layers are exactly the adjacent-parallel-gate pattern
//! that stresses crosstalk mitigation. The default step count grows with
//! the chain length (`steps = n`), mirroring a digitized adiabatic ramp —
//! this is why the paper's `ising(16)` becomes too deep to survive while
//! `ising(4)` is easy.

use fastsc_ir::{Circuit, Gate};

/// Transverse-field and coupling angles per step (ramped).
const FIELD: f64 = 0.4;
const COUPLING: f64 = 0.6;

/// Builds `ISING(n)` with the default `steps = n` schedule.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ising(n: usize) -> Circuit {
    ising_with_steps(n, n)
}

/// Builds an `n`-spin chain evolution with an explicit Trotter-step count.
///
/// # Panics
///
/// Panics if `n < 2` or `steps == 0`.
pub fn ising_with_steps(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2, "a spin chain needs at least 2 sites, got {n}");
    assert!(steps > 0, "at least one Trotter step required");
    let mut c = Circuit::new(n);
    // Ground state of the X field: |+>^n.
    for q in 0..n {
        c.push1(Gate::H, q).expect("in range");
    }
    for step in 0..steps {
        // Adiabatic ramp: field decreases, coupling increases.
        let s = (step + 1) as f64 / steps as f64;
        let zz_angle = 2.0 * COUPLING * s;
        let x_angle = 2.0 * FIELD * (1.0 - s) + 0.05;
        // Even pairs (0,1), (2,3), ... then odd pairs (1,2), (3,4), ...
        for parity in 0..2 {
            let mut q = parity;
            while q + 1 < n {
                c.push2(Gate::Cnot, q, q + 1).expect("in range");
                c.push1(Gate::Rz(zz_angle), q + 1).expect("in range");
                c.push2(Gate::Cnot, q, q + 1).expect("in range");
                q += 2;
            }
        }
        for q in 0..n {
            c.push1(Gate::Rx(x_angle), q).expect("in range");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_pair_count_per_step() {
        // n = 6: even pairs (0,1),(2,3),(4,5); odd pairs (1,2),(3,4):
        // 5 ZZ blocks = 10 CNOTs per step.
        let c = ising_with_steps(6, 1);
        assert_eq!(c.two_qubit_count(), 10);
        assert_eq!(c.gate_counts()["rz"], 5);
    }

    #[test]
    fn default_steps_scale_with_length() {
        let c4 = ising(4);
        let c8 = ising(8);
        assert!(c8.depth() > c4.depth(), "longer chain => deeper ramp");
        // Per-step depth is constant; total depth scales with steps = n.
        assert!(c8.two_qubit_count() > 4 * c4.two_qubit_count() / 2);
    }

    #[test]
    fn even_layer_is_parallel() {
        // The even-pair ZZ layer touches disjoint qubits, so the ASAP
        // depth of one step is bounded regardless of n.
        let shallow = ising_with_steps(4, 1);
        let wide = ising_with_steps(12, 1);
        assert!(
            wide.depth() <= shallow.depth() + 2,
            "depth must not grow with width: {} vs {}",
            wide.depth(),
            shallow.depth()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(ising(5), ising(5));
    }

    #[test]
    #[should_panic(expected = "at least 2 sites")]
    fn rejects_single_site() {
        let _ = ising(1);
    }
}

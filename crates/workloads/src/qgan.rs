//! Quantum GAN generator ansatz (paper Table II, after Lloyd & Weedbrook
//! 2018).
//!
//! The generator of a quantum GAN over training data of dimension `2^n` is
//! a hardware-efficient variational circuit: alternating layers of
//! parameterized single-qubit rotations (`Ry`, `Rz` on every qubit) and a
//! nearest-neighbor `CNOT` entangling ladder. Ladder `CNOT`s on
//! `(0,1), (1,2), ...` chain through shared qubits, so QGAN is mostly
//! sequential in its two-qubit layer but wide in its rotation layers.

use fastsc_ir::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default number of generator layers.
const LAYERS: usize = 2;

/// Builds `QGAN(n)` with the default layer count and angles drawn from
/// `seed`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn qgan(n: usize, seed: u64) -> Circuit {
    qgan_with_layers(n, LAYERS, seed)
}

/// Builds the generator ansatz with an explicit layer count.
///
/// # Panics
///
/// Panics if `n < 2` or `layers == 0`.
pub fn qgan_with_layers(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "QGAN needs at least 2 qubits, got {n}");
    assert!(layers > 0, "QGAN needs at least one layer");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut angle = move || rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);

    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.push1(Gate::Ry(angle()), q).expect("in range");
            c.push1(Gate::Rz(angle()), q).expect("in range");
        }
        for q in 0..n - 1 {
            c.push2(Gate::Cnot, q, q + 1).expect("in range");
        }
    }
    // Final rotation layer (read-out basis alignment).
    for q in 0..n {
        c.push1(Gate::Ry(angle()), q).expect("in range");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_scale_with_layers() {
        let n = 6;
        let c = qgan_with_layers(n, 3, 1);
        assert_eq!(c.two_qubit_count(), 3 * (n - 1));
        assert_eq!(c.gate_counts()["ry"], 3 * n + n);
        assert_eq!(c.gate_counts()["rz"], 3 * n);
    }

    #[test]
    fn default_depth_reasonable_for_25_qubits() {
        // qgan(25) appears in Fig. 9 with workable success rates: its
        // depth must stay well below the deep XEB instances.
        let c = qgan(25, 0);
        assert!(c.depth() < 60, "depth = {}", c.depth());
    }

    #[test]
    fn deterministic_by_seed_and_distinct_across_seeds() {
        assert_eq!(qgan(5, 7), qgan(5, 7));
        assert_ne!(qgan(5, 7), qgan(5, 8));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_zero_layers() {
        let _ = qgan_with_layers(4, 0, 0);
    }
}

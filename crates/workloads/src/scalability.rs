//! The scalability workload family: square-grid devices at 64, 256 and
//! 1024 qubits with proportionally sized XEB programs.
//!
//! The paper evaluates on lattices up to 25 qubits; the serving goal is
//! 1000-qubit devices compiled through the partitioned path. This module
//! pins one canonical tier ladder — device side, program, seed and
//! partition cap — so benches (`scalability` rows in
//! `BENCH_compile.json`), the `bench_guard` scale gate and the
//! determinism suite all measure and test the *same* workloads instead
//! of each inventing its own.

use crate::Benchmark;
use fastsc_ir::Circuit;

/// One rung of the scalability ladder: an `side x side` grid device and
/// its proportional XEB program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleTier {
    /// Grid side length; the device has `side * side` qubits.
    pub side: usize,
    /// Partition cap (`CompilerConfig::with_partition` argument) the
    /// family benches the partitioned path with: small enough to split
    /// the tier into several regions, large enough that regions keep a
    /// two-dimensional interior.
    pub partition_cap: usize,
    /// Seed shared by the device and the program generator.
    pub seed: u64,
}

/// XEB depth (two-qubit cycles) used by every tier: deep enough to gate
/// every coupling a few times, shallow enough that the device-sized
/// setup costs the partitioned path targets stay visible.
pub const SCALE_XEB_DEPTH: usize = 4;

impl ScaleTier {
    /// Number of device qubits (`side * side`).
    pub fn n_qubits(self) -> usize {
        self.side * self.side
    }

    /// The tier's program: XEB over every qubit at [`SCALE_XEB_DEPTH`].
    pub fn benchmark(self) -> Benchmark {
        Benchmark::Xeb(self.n_qubits(), SCALE_XEB_DEPTH)
    }

    /// Builds the tier's circuit with the tier seed.
    pub fn circuit(self) -> Circuit {
        self.benchmark().build(self.seed)
    }

    /// Row identifier used in `BENCH_compile.json`, e.g. `scale256`.
    pub fn label(self) -> String {
        format!("scale{}", self.n_qubits())
    }
}

/// The canonical ladder: 64 / 256 / 1024 qubits.
pub fn scale_tiers() -> [ScaleTier; 3] {
    [
        ScaleTier { side: 8, partition_cap: 32, seed: 11 },
        ScaleTier { side: 16, partition_cap: 64, seed: 11 },
        ScaleTier { side: 32, partition_cap: 64, seed: 11 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_64_256_1024() {
        let tiers = scale_tiers();
        assert_eq!(tiers.map(ScaleTier::n_qubits), [64, 256, 1024]);
        assert_eq!(tiers[1].label(), "scale256");
    }

    #[test]
    fn caps_split_every_tier() {
        for tier in scale_tiers() {
            assert!(tier.partition_cap < tier.n_qubits(), "{}", tier.label());
        }
    }

    #[test]
    fn circuits_cover_every_qubit() {
        let tier = scale_tiers()[0];
        let c = tier.circuit();
        assert_eq!(c.n_qubits(), 64);
        assert!(!c.is_empty());
        assert_eq!(c, tier.circuit());
    }
}

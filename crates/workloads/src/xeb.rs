//! Cross-entropy benchmarking circuits (paper Table II, after Arute et al.
//! 2019 — the Sycamore quantum-supremacy experiment).
//!
//! `XEB(n, p)` runs `p` cycles on a `sqrt(n) x sqrt(n)` mesh; each cycle
//! applies a random single-qubit gate to every qubit followed by `iSWAP`s
//! on one of four disjoint edge patterns (A/B/C/D), rotating through the
//! patterns across cycles. Within a pattern the active couplings sit at
//! distance 1 from each other, making XEB the maximally-parallel,
//! maximally-crosstalk-prone workload of the suite — the paper uses it to
//! benchmark simultaneous two-qubit gate fidelity.

use fastsc_graph::topology::grid_index;
use fastsc_ir::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four disjoint mesh edge patterns cycled by XEB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgePattern {
    /// Horizontal edges starting at even columns.
    A,
    /// Horizontal edges starting at odd columns.
    B,
    /// Vertical edges starting at even rows.
    C,
    /// Vertical edges starting at odd rows.
    D,
}

impl EdgePattern {
    /// The rotation order used across cycles.
    pub const CYCLE: [EdgePattern; 4] =
        [EdgePattern::A, EdgePattern::C, EdgePattern::B, EdgePattern::D];

    /// The qubit pairs active under this pattern on a `side x side` mesh.
    pub fn edges(self, side: usize) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for r in 0..side {
            for c in 0..side {
                match self {
                    EdgePattern::A | EdgePattern::B => {
                        let parity = if self == EdgePattern::A { 0 } else { 1 };
                        if c % 2 == parity && c + 1 < side {
                            pairs.push((grid_index(r, c, side), grid_index(r, c + 1, side)));
                        }
                    }
                    EdgePattern::C | EdgePattern::D => {
                        let parity = if self == EdgePattern::C { 0 } else { 1 };
                        if r % 2 == parity && r + 1 < side {
                            pairs.push((grid_index(r, c, side), grid_index(r + 1, c, side)));
                        }
                    }
                }
            }
        }
        pairs
    }
}

/// Builds `XEB(n, p)`: `p` cycles on a `sqrt(n)`-sided mesh, with random
/// single-qubit layers drawn from `seed`.
///
/// # Panics
///
/// Panics if `n` is not a perfect square >= 4 or `p == 0`.
pub fn xeb(n: usize, p: usize, seed: u64) -> Circuit {
    let side = (n as f64).sqrt().round() as usize;
    assert_eq!(side * side, n, "XEB needs a square qubit count, got {n}");
    assert!(n >= 4, "XEB needs at least a 2x2 mesh");
    assert!(p > 0, "XEB needs at least one cycle");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for cycle in 0..p {
        // Random single-qubit layer: sqrt(X), sqrt(Y) or sqrt(W)-like.
        for q in 0..n {
            let g = match rng.gen_range(0..3) {
                0 => Gate::Rx(std::f64::consts::FRAC_PI_2),
                1 => Gate::Ry(std::f64::consts::FRAC_PI_2),
                _ => Gate::Rz(std::f64::consts::FRAC_PI_2),
            };
            c.push1(g, q).expect("in range");
        }
        // Entangling layer on the rotating pattern.
        let pattern = EdgePattern::CYCLE[cycle % EdgePattern::CYCLE.len()];
        for (a, b) in pattern.edges(side) {
            c.push2(Gate::ISwap, a, b).expect("in range");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsc_graph::topology::{self, grid_coord};

    #[test]
    fn patterns_are_disjoint_and_cover_mesh() {
        let side = 4;
        let mesh = topology::grid(side, side);
        let mut all: Vec<(usize, usize)> = Vec::new();
        for p in EdgePattern::CYCLE {
            let edges = p.edges(side);
            // Disjoint qubits within a pattern.
            let mut used = vec![false; side * side];
            for &(a, b) in &edges {
                assert!(!used[a] && !used[b], "{p:?} reuses a qubit");
                used[a] = true;
                used[b] = true;
                assert!(mesh.has_edge(a, b), "{p:?} uses a non-edge");
            }
            all.extend(edges);
        }
        // Union covers every mesh edge exactly once.
        all.sort_unstable();
        let mut expected: Vec<(usize, usize)> = mesh.edges().map(|(_, e)| e).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn pattern_a_has_adjacent_parallel_gates_on_4x4() {
        // (r,0)-(r,1) and (r,2)-(r,3) are distance-1 couplings: the
        // crosstalk stress case.
        let edges = EdgePattern::A.edges(4);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 3)));
        assert_eq!(edges.len(), 8);
    }

    #[test]
    fn cycle_structure() {
        let c = xeb(9, 5, 3);
        assert_eq!(c.n_qubits(), 9);
        // 5 cycles x 9 single-qubit gates, plus pattern iSWAPs.
        assert_eq!(c.single_qubit_count(), 45);
        assert!(c.two_qubit_count() > 0);
        assert!(c.gate_counts().contains_key("iswap"));
    }

    #[test]
    fn deeper_xeb_has_more_cycles() {
        let shallow = xeb(16, 5, 1);
        let deep = xeb(16, 15, 1);
        assert!(deep.depth() > 2 * shallow.depth());
        assert!(deep.two_qubit_count() > 2 * shallow.two_qubit_count());
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(xeb(16, 10, 9), xeb(16, 10, 9));
        assert_ne!(xeb(16, 10, 9), xeb(16, 10, 10));
    }

    #[test]
    #[should_panic(expected = "square qubit count")]
    fn rejects_non_square() {
        let _ = xeb(12, 5, 0);
    }

    #[test]
    fn pattern_coords_roundtrip() {
        // Sanity: grid_coord inverse of grid_index for the sizes we use.
        for side in [2, 3, 4, 5] {
            for u in 0..side * side {
                let (r, c) = grid_coord(u, side);
                assert_eq!(grid_index(r, c, side), u);
            }
        }
    }
}

//! NISQ benchmark circuit generators (paper Table II).
//!
//! | Benchmark | Description |
//! |---|---|
//! | `BV(n)` | Bernstein–Vazirani with a hidden bit string |
//! | `QAOA(n)` | MAX-CUT QAOA on an Erdős–Rényi `G(n, 0.5)` graph |
//! | `ISING(n)` | Trotterized linear Ising spin-chain evolution |
//! | `QGAN(n)` | Variational generator ansatz of a quantum GAN |
//! | `XEB(n, p)` | Cross-entropy benchmarking, `p` cycles on a `sqrt(n)` mesh |
//!
//! All generators are deterministic given their seed, emit program-level
//! gates (`CNOT`, `Rz`, ...; the compiler lowers them), and index qubits
//! `0..n` — the compiler's router maps them onto device qubits and inserts
//! `SWAP`s where program gates touch uncoupled pairs.
//!
//! # Example
//!
//! ```
//! use fastsc_workloads::Benchmark;
//!
//! let circuit = Benchmark::Xeb(16, 5).build(7);
//! assert_eq!(circuit.n_qubits(), 16);
//! assert_eq!(Benchmark::Xeb(16, 5).label(), "xeb(16,5)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bv;
mod ising;
mod qaoa;
mod qgan;
pub mod scalability;
mod xeb;

pub use bv::{bv, bv_with_hidden_string};
pub use ising::{ising, ising_with_steps};
pub use qaoa::{qaoa, qaoa_with_rounds};
pub use qgan::{qgan, qgan_with_layers};
pub use scalability::{scale_tiers, ScaleTier, SCALE_XEB_DEPTH};
pub use xeb::{xeb, EdgePattern};

use fastsc_ir::Circuit;
use std::fmt;

/// A named benchmark instance (paper Table II), buildable from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Bernstein–Vazirani on `n` qubits (`n - 1` data + 1 ancilla).
    Bv(usize),
    /// MAX-CUT QAOA on an Erdős–Rényi graph with `n` vertices.
    Qaoa(usize),
    /// Linear Ising-chain simulation of length `n`.
    Ising(usize),
    /// QGAN generator ansatz on `n` qubits.
    Qgan(usize),
    /// Cross-entropy benchmarking: `n` qubits, `p` cycles.
    Xeb(usize, usize),
}

impl Benchmark {
    /// Builds the circuit; `seed` fixes hidden strings, random graphs and
    /// random XEB single-qubit layers.
    pub fn build(self, seed: u64) -> Circuit {
        match self {
            Benchmark::Bv(n) => bv(n, seed),
            Benchmark::Qaoa(n) => qaoa(n, seed),
            Benchmark::Ising(n) => ising(n),
            Benchmark::Qgan(n) => qgan(n, seed),
            Benchmark::Xeb(n, p) => xeb(n, p, seed),
        }
    }

    /// Number of program qubits.
    pub fn n_qubits(self) -> usize {
        match self {
            Benchmark::Bv(n)
            | Benchmark::Qaoa(n)
            | Benchmark::Ising(n)
            | Benchmark::Qgan(n)
            | Benchmark::Xeb(n, _) => n,
        }
    }

    /// The Fig. 9 benchmark suite: `bv`, `qaoa`, `ising`, `qgan`, `xeb`
    /// at the paper's sizes (n = 4, 9, 16, 25; XEB depths 5, 10, 15).
    pub fn fig9_suite() -> Vec<Benchmark> {
        let mut suite = vec![
            Benchmark::Bv(4),
            Benchmark::Bv(9),
            Benchmark::Bv(16),
            Benchmark::Qaoa(4),
            Benchmark::Qaoa(9),
            Benchmark::Ising(4),
            Benchmark::Qgan(4),
            Benchmark::Qgan(9),
            Benchmark::Qgan(16),
            Benchmark::Qgan(25),
        ];
        for p in [5, 10, 15] {
            for n in [4, 9, 16, 25] {
                suite.push(Benchmark::Xeb(n, p));
            }
        }
        suite
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl Benchmark {
    /// The paper's axis label, e.g. `"xeb(16,10)"`.
    pub fn label(self) -> String {
        match self {
            Benchmark::Bv(n) => format!("bv({n})"),
            Benchmark::Qaoa(n) => format!("qaoa({n})"),
            Benchmark::Ising(n) => format!("ising({n})"),
            Benchmark::Qgan(n) => format!("qgan({n})"),
            Benchmark::Xeb(n, p) => format!("xeb({n},{p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(Benchmark::Bv(16).label(), "bv(16)");
        assert_eq!(Benchmark::Xeb(25, 15).label(), "xeb(25,15)");
        assert_eq!(Benchmark::Qaoa(9).to_string(), "qaoa(9)");
    }

    #[test]
    fn suite_has_expected_size() {
        let suite = Benchmark::fig9_suite();
        assert_eq!(suite.len(), 22);
        for b in &suite {
            assert!(b.n_qubits() >= 4);
        }
    }

    #[test]
    fn build_produces_right_width() {
        for b in Benchmark::fig9_suite() {
            let c = b.build(3);
            assert_eq!(c.n_qubits(), b.n_qubits(), "{b}");
            assert!(!c.is_empty(), "{b}");
        }
    }

    #[test]
    fn builds_are_seed_deterministic() {
        for b in [Benchmark::Bv(9), Benchmark::Qaoa(6), Benchmark::Xeb(9, 5)] {
            assert_eq!(b.build(11), b.build(11), "{b}");
        }
    }
}

//! A small Satisfiability-Modulo-Theories solver for **difference logic**
//! over the reals, replacing the Z3 dependency of the original FastSC
//! implementation.
//!
//! The paper's frequency assignment (§V-B3) asks for `|C|` frequencies
//! `x_c ∈ [ω_lo, ω_hi]` such that for every pair of colors
//!
//! ```text
//! |x_i - x_j|     >= δ        (direct resonance)
//! |x_i + α - x_j| >= δ        (sideband resonance, α = anharmonicity)
//! ```
//!
//! and then maximizes the separation threshold δ by binary search
//! (`smt_find`). After case-splitting each absolute value, every atom is a
//! *difference constraint* `x - y <= c`, a theory decidable by detecting
//! negative cycles in a weighted constraint graph (Bellman–Ford). This crate
//! implements exactly that fragment:
//!
//! * [`Problem`] — conjunction of hard difference constraints plus
//!   disjunctive [`Clause`]s (e.g. from absolute values);
//! * a DPLL-style case-split search with theory-level pruning;
//! * [`Model`] extraction from shortest-path potentials;
//! * [`maximize`] — binary search for the largest parameter for which a
//!   parameterized problem stays satisfiable.
//!
//! # Example: three frequencies in 1 GHz with 0.4 GHz separation
//!
//! ```
//! use fastsc_smt::Problem;
//!
//! let mut p = Problem::new();
//! let xs: Vec<_> = (0..3).map(|_| p.new_var()).collect();
//! for &x in &xs {
//!     p.add_bounds(x, 6.0, 7.0);
//! }
//! for i in 0..3 {
//!     for j in (i + 1)..3 {
//!         p.add_abs_ge(xs[i], 0.0, xs[j], 0.4); // |x_i - x_j| >= 0.4
//!     }
//! }
//! let model = p.solve().expect("three slots fit in 1 GHz at 0.4 GHz spacing");
//! let mut vals: Vec<f64> = xs.iter().map(|&x| model.value(x)).collect();
//! vals.sort_by(f64::total_cmp);
//! assert!(vals[1] - vals[0] >= 0.4 - 1e-9);
//! assert!(vals[2] - vals[1] >= 0.4 - 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod optimize;
mod problem;
mod solver;
mod theory;

pub use optimize::{maximize, MaximizeResult};
pub use problem::{Clause, DiffConstraint, Problem, Var};
pub use solver::Model;

//! DPLL-style case-split search over disjunctive difference clauses.
//!
//! The solver maintains a stack of chosen literals (one per decided clause)
//! and asks the theory core for feasibility of the hard constraints plus the
//! chosen literals after every decision, pruning infeasible branches early.
//! Clauses are decided in order of increasing literal count (all clauses
//! from the frequency optimizer are binary, but the engine is general).

use crate::problem::{DiffConstraint, Problem, Var};
use crate::theory::{self, Feasibility, EPSILON};

/// A satisfying assignment for a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    values: Vec<f64>, // index 0 is the zero variable (always 0.0)
}

impl Model {
    /// The value assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the problem that produced this
    /// model.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }

    /// All user-variable values, in variable-creation order.
    pub fn values(&self) -> &[f64] {
        &self.values[1..]
    }

    /// Verifies this model against a problem, with `tol` slack per
    /// constraint. Useful in tests and debug assertions.
    pub fn satisfies(&self, p: &Problem, tol: f64) -> bool {
        p.hard.iter().all(|c| c.is_satisfied(&self.values, tol))
            && p.clauses.iter().all(|cl| cl.is_satisfied(&self.values, tol))
    }
}

impl Problem {
    /// Decides satisfiability and returns a model if one exists.
    ///
    /// The search explores at most `prod(|clause_i|)` theory checks but
    /// prunes aggressively: each partial choice set is checked for
    /// feasibility before descending, and clauses already entailed by the
    /// current witness are skipped. For the frequency-assignment workload
    /// (binary clauses over at most ~10 colors) this is microseconds.
    pub fn solve(&self) -> Option<Model> {
        // Order clauses smallest-first to fail fast on tight disjunctions.
        let mut order: Vec<usize> = (0..self.clauses.len()).collect();
        order.sort_by_key(|&i| self.clauses[i].literals.len());

        let mut chosen: Vec<DiffConstraint> = Vec::with_capacity(self.clauses.len());
        self.search(&order, 0, &mut chosen).map(|values| Model { values })
    }

    fn search(
        &self,
        order: &[usize],
        depth: usize,
        chosen: &mut Vec<DiffConstraint>,
    ) -> Option<Vec<f64>> {
        let mut active: Vec<DiffConstraint> =
            Vec::with_capacity(self.hard.len() + chosen.len());
        active.extend_from_slice(&self.hard);
        active.extend_from_slice(chosen);
        let witness = match theory::check(self.n_vars, &active) {
            Feasibility::Sat(w) => w,
            Feasibility::Unsat => return None,
        };

        // Find the next clause not already satisfied by the witness; any
        // clause the witness happens to satisfy can be skipped *only* if we
        // re-validate at the end, so instead we skip clauses whose literal
        // is entailed (conservative: decide every remaining clause, but
        // prefer the literal the witness already satisfies).
        if depth == order.len() {
            return Some(witness);
        }
        let clause = &self.clauses[order[depth]];

        // Try literals, starting with those the current witness satisfies
        // (they are most likely to stay feasible).
        let mut literal_order: Vec<&DiffConstraint> = clause.literals.iter().collect();
        literal_order
            .sort_by_key(|l| if l.is_satisfied(&witness, EPSILON) { 0u8 } else { 1u8 });

        for literal in literal_order {
            chosen.push(*literal);
            if let Some(model) = self.search(order, depth + 1, chosen) {
                chosen.pop();
                return Some(model);
            }
            chosen.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_problem_is_sat() {
        let mut p = Problem::new();
        let _ = p.new_var();
        let model = p.solve().expect("no constraints");
        assert!(model.satisfies(&p, EPSILON));
    }

    #[test]
    fn simple_bounds_model_in_range() {
        let mut p = Problem::new();
        let x = p.new_var();
        p.add_bounds(x, 5.0, 7.0);
        let m = p.solve().expect("interval is satisfiable");
        assert!((5.0 - 1e-9..=7.0 + 1e-9).contains(&m.value(x)));
    }

    #[test]
    fn infeasible_bounds_unsat() {
        let mut p = Problem::new();
        let x = p.new_var();
        let zero_width = 6.0;
        p.add_bounds(x, zero_width, zero_width); // fine: x == 6
        p.add_ge(x, p.zero(), 8.0); // x >= 8 contradicts x <= 6
        assert!(p.solve().is_none());
    }

    #[test]
    fn two_vars_separation_clause() {
        let mut p = Problem::new();
        let x = p.new_var();
        let y = p.new_var();
        p.add_bounds(x, 0.0, 1.0);
        p.add_bounds(y, 0.0, 1.0);
        p.add_abs_ge(x, 0.0, y, 0.7);
        let m = p.solve().expect("0.7 separation fits in [0,1]");
        assert!((m.value(x) - m.value(y)).abs() >= 0.7 - 1e-9);
        assert!(m.satisfies(&p, EPSILON));
    }

    #[test]
    fn separation_too_wide_unsat() {
        let mut p = Problem::new();
        let x = p.new_var();
        let y = p.new_var();
        p.add_bounds(x, 0.0, 1.0);
        p.add_bounds(y, 0.0, 1.0);
        p.add_abs_ge(x, 0.0, y, 1.5);
        assert!(p.solve().is_none());
    }

    #[test]
    fn three_way_separation_packs_interval() {
        let mut p = Problem::new();
        let vars: Vec<Var> = (0..3).map(|_| p.new_var()).collect();
        for &v in &vars {
            p.add_bounds(v, 0.0, 1.0);
        }
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                p.add_abs_ge(vars[i], 0.0, vars[j], 0.5);
            }
        }
        // 3 points pairwise >= 0.5 apart need an interval of length >= 1.0.
        let m = p.solve().expect("exactly fits");
        assert!(m.satisfies(&p, EPSILON));
        let mut vals: Vec<f64> = vars.iter().map(|&v| m.value(v)).collect();
        vals.sort_by(f64::total_cmp);
        assert!(vals[1] - vals[0] >= 0.5 - 1e-9);
        assert!(vals[2] - vals[1] >= 0.5 - 1e-9);
    }

    #[test]
    fn three_way_separation_overpacked_unsat() {
        let mut p = Problem::new();
        let vars: Vec<Var> = (0..3).map(|_| p.new_var()).collect();
        for &v in &vars {
            p.add_bounds(v, 0.0, 1.0);
        }
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                p.add_abs_ge(vars[i], 0.0, vars[j], 0.51);
            }
        }
        assert!(p.solve().is_none());
    }

    #[test]
    fn sideband_constraint_with_anharmonicity() {
        // Mirrors the paper's Eq. (3): |x_i + alpha - x_j| >= delta with
        // alpha = -0.2 GHz. Place two interaction frequencies in [6, 7].
        let mut p = Problem::new();
        let x = p.new_var();
        let y = p.new_var();
        let alpha = -0.2;
        p.add_bounds(x, 6.0, 7.0);
        p.add_bounds(y, 6.0, 7.0);
        p.add_abs_ge(x, 0.0, y, 0.3);
        p.add_abs_ge(x, alpha, y, 0.3);
        p.add_abs_ge(y, alpha, x, 0.3);
        let m = p.solve().expect("plenty of room in 1 GHz");
        let (xv, yv) = (m.value(x), m.value(y));
        assert!((xv - yv).abs() >= 0.3 - 1e-9);
        assert!((xv + alpha - yv).abs() >= 0.3 - 1e-9);
        assert!((yv + alpha - xv).abs() >= 0.3 - 1e-9);
    }

    #[test]
    fn ordering_constraints_respected() {
        let mut p = Problem::new();
        let hi = p.new_var();
        let lo = p.new_var();
        p.add_bounds(hi, 0.0, 10.0);
        p.add_bounds(lo, 0.0, 10.0);
        p.add_ge(hi, lo, 2.0); // hi >= lo + 2
        let m = p.solve().expect("feasible");
        assert!(m.value(hi) - m.value(lo) >= 2.0 - 1e-9);
    }

    #[test]
    fn general_clause_three_literals() {
        let mut p = Problem::new();
        let x = p.new_var();
        p.add_bounds(x, 0.0, 10.0);
        // x <= 1 OR x <= 2 OR x >= 9 — trivially satisfiable.
        let z = p.zero();
        p.add_clause(vec![
            DiffConstraint { x, y: z, bound: 1.0 },
            DiffConstraint { x, y: z, bound: 2.0 },
            DiffConstraint { x: z, y: x, bound: -9.0 },
        ]);
        // Force x >= 5 so only the third literal can hold.
        p.add_ge(x, z, 5.0);
        let m = p.solve().expect("third literal satisfiable");
        assert!(m.value(x) >= 9.0 - 1e-9);
    }

    #[test]
    fn model_values_exposes_user_vars_only() {
        let mut p = Problem::new();
        let a = p.new_var();
        let b = p.new_var();
        p.add_bounds(a, 1.0, 1.0);
        p.add_bounds(b, 2.0, 2.0);
        let m = p.solve().expect("pinned values");
        assert_eq!(m.values().len(), 2);
        assert!((m.value(a) - 1.0).abs() < 1e-9);
        assert!((m.value(b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn many_binary_clauses_scale() {
        // 8 colors in [6, 7] with 0.1 separation plus sidebands: the size
        // the static baseline needs on a mesh. Must solve quickly.
        let mut p = Problem::new();
        let vars: Vec<Var> = (0..8).map(|_| p.new_var()).collect();
        for &v in &vars {
            p.add_bounds(v, 6.0, 7.0);
        }
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                p.add_abs_ge(vars[i], 0.0, vars[j], 0.1);
                p.add_abs_ge(vars[i], -0.2, vars[j], 0.05);
            }
        }
        // Fix a total order to emulate the multiplicity ordering the
        // compiler applies (also keeps the search tiny).
        for w in vars.windows(2) {
            p.add_ge(w[0], w[1], 0.0);
        }
        let m = p.solve().expect("8 slots with 0.1 spacing fit in 1 GHz");
        assert!(m.satisfies(&p, EPSILON));
    }
}

//! Theory core: feasibility of a conjunction of difference constraints.
//!
//! A system `{ x_i - x_j <= c_ij }` is satisfiable over the reals iff its
//! *constraint graph* — an edge `j -> i` of weight `c_ij` per constraint —
//! has no negative-weight cycle. Shortest-path distances from a virtual
//! source connected to every node with weight 0 then form a satisfying
//! assignment (Bellman–Ford; see Cormen et al., §24.4).

use crate::problem::DiffConstraint;

/// Numeric slack used when comparing floating-point path lengths.
///
/// Constraint systems produced by the frequency optimizer have magnitudes
/// of a few GHz, so absolute 1e-9 (one Hz, in GHz units) is far below any
/// physically meaningful difference.
pub(crate) const EPSILON: f64 = 1e-9;

/// Outcome of a feasibility check.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Feasibility {
    /// Satisfiable, with a witness assignment (index 0 is the zero var,
    /// already normalized to 0.0).
    Sat(Vec<f64>),
    /// Unsatisfiable: the constraints contain a negative cycle.
    Unsat,
}

/// Decides a conjunction of difference constraints over `n_vars` variables
/// (including the zero variable at index 0).
///
/// Returns a normalized witness (zero variable at exactly 0.0) when
/// satisfiable.
pub(crate) fn check(n_vars: usize, constraints: &[DiffConstraint]) -> Feasibility {
    // dist[v]: shortest distance from the virtual source; starting at 0 for
    // every node is equivalent to an explicit source with 0-weight edges.
    let mut dist = vec![0.0f64; n_vars];

    // Bellman–Ford: n-1 relaxation rounds, then one detection round.
    // Early-exit when a round changes nothing.
    for _ in 0..n_vars.saturating_sub(1) {
        let mut changed = false;
        for c in constraints {
            // x - y <= bound  =>  edge y -> x with weight `bound`.
            let candidate = dist[c.y.0] + c.bound;
            if candidate < dist[c.x.0] - EPSILON {
                dist[c.x.0] = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for c in constraints {
        if dist[c.y.0] + c.bound < dist[c.x.0] - EPSILON {
            return Feasibility::Unsat;
        }
    }

    // Normalize so the zero variable sits at exactly 0.
    let shift = dist[0];
    for d in &mut dist {
        *d -= shift;
    }
    Feasibility::Sat(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Var;

    fn le(x: usize, y: usize, bound: f64) -> DiffConstraint {
        DiffConstraint { x: Var(x), y: Var(y), bound }
    }

    #[test]
    fn empty_system_is_sat() {
        match check(3, &[]) {
            Feasibility::Sat(vals) => assert_eq!(vals, vec![0.0; 3]),
            Feasibility::Unsat => panic!("empty system must be satisfiable"),
        }
    }

    #[test]
    fn chain_is_sat_and_witness_satisfies() {
        // x1 - x2 <= -1 (x1 + 1 <= x2), x2 - x3 <= -1.
        let cs = [le(1, 2, -1.0), le(2, 3, -1.0)];
        match check(4, &cs) {
            Feasibility::Sat(v) => {
                for c in &cs {
                    assert!(c.is_satisfied(&v, EPSILON), "violated: {c}");
                }
            }
            Feasibility::Unsat => panic!("chain is satisfiable"),
        }
    }

    #[test]
    fn negative_cycle_is_unsat() {
        // x - y <= -1 and y - x <= 0 => (x - y) + (y - x) <= -1 => 0 <= -1.
        let cs = [le(1, 2, -1.0), le(2, 1, 0.0)];
        assert_eq!(check(3, &cs), Feasibility::Unsat);
    }

    #[test]
    fn zero_cycle_is_sat() {
        // x - y <= 0 and y - x <= 0 => x == y: satisfiable.
        let cs = [le(1, 2, 0.0), le(2, 1, 0.0)];
        match check(3, &cs) {
            Feasibility::Sat(v) => assert!((v[1] - v[2]).abs() < 1e-9),
            Feasibility::Unsat => panic!("equality is satisfiable"),
        }
    }

    #[test]
    fn bounds_via_zero_variable() {
        // 5 <= x <= 7 as x - z <= 7, z - x <= -5.
        let cs = [le(1, 0, 7.0), le(0, 1, -5.0)];
        match check(2, &cs) {
            Feasibility::Sat(v) => {
                assert_eq!(v[0], 0.0);
                assert!((5.0..=7.0).contains(&v[1]), "x = {}", v[1]);
            }
            Feasibility::Unsat => panic!("interval is satisfiable"),
        }
    }

    #[test]
    fn contradictory_bounds_unsat() {
        // x <= 1 and x >= 2.
        let cs = [le(1, 0, 1.0), le(0, 1, -2.0)];
        assert_eq!(check(2, &cs), Feasibility::Unsat);
    }

    #[test]
    fn witness_is_normalized() {
        let cs = [le(0, 1, -3.0)]; // z - x <= -3 => x >= 3.
        match check(2, &cs) {
            Feasibility::Sat(v) => {
                assert_eq!(v[0], 0.0);
                assert!(v[1] >= 3.0 - EPSILON);
            }
            Feasibility::Unsat => panic!("satisfiable"),
        }
    }
}

use std::fmt;

/// A real-valued solver variable.
///
/// Create variables with [`Problem::new_var`]; the index is an opaque handle
/// valid only for the problem that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw index of this variable within its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An atomic difference constraint `x - y <= bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConstraint {
    /// Minuend variable.
    pub x: Var,
    /// Subtrahend variable.
    pub y: Var,
    /// Upper bound on `x - y`.
    pub bound: f64,
}

impl fmt::Display for DiffConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} - {} <= {}", self.x, self.y, self.bound)
    }
}

impl DiffConstraint {
    /// Whether the assignment `values` satisfies this constraint, up to
    /// `tol` of slack.
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        values[self.x.0] - values[self.y.0] <= self.bound + tol
    }
}

/// A disjunction of difference constraints (at least one must hold).
///
/// Absolute-value separations expand into two-literal clauses; see
/// [`Problem::add_abs_ge`].
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The disjuncts.
    pub literals: Vec<DiffConstraint>,
}

impl Clause {
    /// Whether at least one literal is satisfied by `values` (up to `tol`).
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        self.literals.iter().any(|l| l.is_satisfied(values, tol))
    }
}

/// A difference-logic satisfiability problem: a conjunction of hard
/// [`DiffConstraint`]s and disjunctive [`Clause`]s over real variables.
///
/// Internally a reserved *zero variable* anchors absolute bounds
/// (`lo <= x <= hi` becomes `x - zero <= hi` and `zero - x <= -lo`); models
/// are normalized so that the zero variable evaluates to `0`.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) n_vars: usize, // includes the zero variable at index 0
    pub(crate) hard: Vec<DiffConstraint>,
    pub(crate) clauses: Vec<Clause>,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Problem { n_vars: 1, hard: Vec::new(), clauses: Vec::new() }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Number of user variables (excluding the internal zero variable).
    pub fn var_count(&self) -> usize {
        self.n_vars - 1
    }

    /// Number of hard constraints (including expanded bounds).
    pub fn constraint_count(&self) -> usize {
        self.hard.len()
    }

    /// Number of disjunctive clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    pub(crate) fn zero(&self) -> Var {
        Var(0)
    }

    /// Adds `x - y <= c`.
    ///
    /// # Panics
    ///
    /// Panics if either variable does not belong to this problem or if `c`
    /// is NaN.
    pub fn add_le(&mut self, x: Var, y: Var, c: f64) {
        self.check(x);
        self.check(y);
        assert!(!c.is_nan(), "constraint bound must not be NaN");
        self.hard.push(DiffConstraint { x, y, bound: c });
    }

    /// Adds `x - y >= c` (equivalently `y - x <= -c`).
    ///
    /// # Panics
    ///
    /// Panics if either variable does not belong to this problem or if `c`
    /// is NaN.
    pub fn add_ge(&mut self, x: Var, y: Var, c: f64) {
        self.add_le(y, x, -c);
    }

    /// Constrains `lo <= x <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, if either bound is NaN, or if `x` does not
    /// belong to this problem.
    pub fn add_bounds(&mut self, x: Var, lo: f64, hi: f64) {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        let zero = self.zero();
        self.add_le(x, zero, hi); // x <= hi
        self.add_le(zero, x, -lo); // -x <= -lo
    }

    /// Adds the separation constraint `|x + offset - y| >= delta` as the
    /// two-literal clause `(x - y >= delta - offset) OR (y - x >= delta + offset)`.
    ///
    /// With `offset = 0` this is the direct resonance-avoidance constraint
    /// of the paper's Eq. (2); with `offset = α` (the anharmonicity) it is
    /// the sideband constraint of Eq. (3).
    ///
    /// # Panics
    ///
    /// Panics if `delta < 0`, any value is NaN, or a variable does not
    /// belong to this problem.
    pub fn add_abs_ge(&mut self, x: Var, offset: f64, y: Var, delta: f64) {
        self.check(x);
        self.check(y);
        assert!(delta >= 0.0, "separation must be non-negative, got {delta}");
        assert!(!offset.is_nan(), "offset must not be NaN");
        // x + offset - y >= delta  <=>  y - x <= offset - delta
        let pos = DiffConstraint { x: y, y: x, bound: offset - delta };
        // y - x - offset >= delta  <=>  x - y <= -offset - delta
        let neg = DiffConstraint { x, y, bound: -offset - delta };
        self.clauses.push(Clause { literals: vec![pos, neg] });
    }

    /// Adds an arbitrary disjunction of difference constraints.
    ///
    /// # Panics
    ///
    /// Panics if the clause is empty (an empty disjunction is trivially
    /// unsatisfiable — model that by an infeasible hard constraint instead)
    /// or mentions foreign variables.
    pub fn add_clause(&mut self, literals: Vec<DiffConstraint>) {
        assert!(!literals.is_empty(), "clauses must have at least one literal");
        for l in &literals {
            self.check(l.x);
            self.check(l.y);
            assert!(!l.bound.is_nan(), "constraint bound must not be NaN");
        }
        self.clauses.push(Clause { literals });
    }

    fn check(&self, v: Var) {
        assert!(v.0 < self.n_vars, "variable {v} does not belong to this problem");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_indices_increase() {
        let mut p = Problem::new();
        let a = p.new_var();
        let b = p.new_var();
        assert_ne!(a, b);
        assert_eq!(p.var_count(), 2);
    }

    #[test]
    fn bounds_expand_to_two_constraints() {
        let mut p = Problem::new();
        let x = p.new_var();
        p.add_bounds(x, 1.0, 2.0);
        assert_eq!(p.constraint_count(), 2);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn bounds_reject_inverted_interval() {
        let mut p = Problem::new();
        let x = p.new_var();
        p.add_bounds(x, 2.0, 1.0);
    }

    #[test]
    fn abs_ge_expands_to_clause() {
        let mut p = Problem::new();
        let x = p.new_var();
        let y = p.new_var();
        p.add_abs_ge(x, 0.0, y, 0.5);
        assert_eq!(p.clause_count(), 1);
        let clause = &p.clauses[0];
        assert_eq!(clause.literals.len(), 2);
        // x = 1.0, y = 0.0 satisfies |x - y| >= 0.5.
        let values = vec![0.0, 1.0, 0.0];
        assert!(clause.is_satisfied(&values, 1e-12));
        // x = 0.2, y = 0.0 does not.
        let values = vec![0.0, 0.2, 0.0];
        assert!(!clause.is_satisfied(&values, 1e-12));
    }

    #[test]
    fn abs_ge_with_offset_shifts_the_band() {
        let mut p = Problem::new();
        let x = p.new_var();
        let y = p.new_var();
        // |x - 0.2 - y| >= 0.1: forbidden band is y in (x-0.3, x-0.1).
        p.add_abs_ge(x, -0.2, y, 0.1);
        let clause = &p.clauses[0];
        let sat = |xv: f64, yv: f64| clause.is_satisfied(&[0.0, xv, yv], 1e-12);
        assert!(sat(1.0, 1.0)); // |1 - 0.2 - 1| = 0.2 >= 0.1
        assert!(!sat(1.0, 0.8)); // |1 - 0.2 - 0.8| = 0 < 0.1
        assert!(sat(1.0, 0.6)); // |1 - 0.2 - 0.6| = 0.2
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_variable_rejected() {
        let mut p1 = Problem::new();
        let mut p2 = Problem::new();
        let _ = p1.new_var();
        let x2 = p2.new_var();
        let x2b = p2.new_var();
        let _ = (x2, x2b);
        // p1 has 1 user var (index 1); index 2 is foreign to p1.
        p1.add_le(Var(2), Var(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one literal")]
    fn empty_clause_rejected() {
        let mut p = Problem::new();
        p.add_clause(Vec::new());
    }

    #[test]
    fn display_formats() {
        let c = DiffConstraint { x: Var(1), y: Var(2), bound: 0.5 };
        assert_eq!(c.to_string(), "x1 - x2 <= 0.5");
    }
}

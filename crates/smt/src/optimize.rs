//! Binary-search maximization of a satisfiability-parameterized problem.
//!
//! The paper's `smt_find` routine searches for the *maximum* separation
//! threshold δ for which the frequency-assignment constraints remain
//! satisfiable (§V-B3). [`maximize`] implements that search generically: the
//! caller supplies a closure building a [`Problem`] for a candidate
//! parameter, and the search homes in on the feasibility boundary.

use crate::problem::Problem;
use crate::solver::Model;

/// Result of [`maximize`]: the largest feasible parameter found and the
/// model witnessing it.
#[derive(Debug, Clone)]
pub struct MaximizeResult {
    /// The largest parameter value proven feasible (within tolerance).
    pub best: f64,
    /// A model for the problem at `best`.
    pub model: Model,
    /// Number of solver invocations performed.
    pub solver_calls: usize,
}

/// Finds (approximately) the largest `t` in `[lo, hi]` such that
/// `build(t)` is satisfiable, assuming feasibility is *downward closed*
/// (if `t` is feasible, so is any smaller value — true for separation
/// thresholds).
///
/// Returns `None` when even `build(lo)` is unsatisfiable. The search stops
/// once the bracket is narrower than `tol` and returns the largest
/// *verified-feasible* parameter, never an unverified midpoint.
///
/// # Panics
///
/// Panics if `lo > hi`, `tol <= 0`, or any bound is NaN.
///
/// # Example
///
/// ```
/// use fastsc_smt::{maximize, Problem};
///
/// // Maximum pairwise separation of 3 points in [0, 1] is 0.5.
/// let result = maximize(0.0, 2.0, 1e-6, |delta| {
///     let mut p = Problem::new();
///     let xs: Vec<_> = (0..3).map(|_| p.new_var()).collect();
///     for &x in &xs {
///         p.add_bounds(x, 0.0, 1.0);
///     }
///     for i in 0..3 {
///         for j in (i + 1)..3 {
///             p.add_abs_ge(xs[i], 0.0, xs[j], delta);
///         }
///     }
///     p
/// })
/// .expect("delta = 0 is feasible");
/// assert!((result.best - 0.5).abs() < 1e-4);
/// ```
pub fn maximize<F>(lo: f64, hi: f64, tol: f64, build: F) -> Option<MaximizeResult>
where
    F: Fn(f64) -> Problem,
{
    assert!(!lo.is_nan() && !hi.is_nan(), "bounds must not be NaN");
    assert!(lo <= hi, "empty search interval [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive, got {tol}");

    let mut calls = 0usize;
    let solve_at = |t: f64, calls: &mut usize| -> Option<Model> {
        *calls += 1;
        build(t).solve()
    };

    // Feasibility floor.
    let mut best_model = solve_at(lo, &mut calls)?;
    let mut feasible = lo;

    // Fast path: the whole interval may be feasible.
    if let Some(m) = solve_at(hi, &mut calls) {
        return Some(MaximizeResult { best: hi, model: m, solver_calls: calls });
    }
    let mut infeasible = hi;

    while infeasible - feasible > tol {
        let mid = 0.5 * (feasible + infeasible);
        match solve_at(mid, &mut calls) {
            Some(m) => {
                feasible = mid;
                best_model = m;
            }
            None => infeasible = mid,
        }
    }
    Some(MaximizeResult { best: feasible, model: best_model, solver_calls: calls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn separation_problem(n: usize, delta: f64, lo: f64, hi: f64) -> Problem {
        let mut p = Problem::new();
        let xs: Vec<_> = (0..n).map(|_| p.new_var()).collect();
        for &x in &xs {
            p.add_bounds(x, lo, hi);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                p.add_abs_ge(xs[i], 0.0, xs[j], delta);
            }
        }
        p
    }

    #[test]
    fn max_separation_of_k_points_is_range_over_k_minus_1() {
        for k in 2..=5 {
            let r = maximize(0.0, 2.0, 1e-7, |d| separation_problem(k, d, 0.0, 1.0))
                .expect("delta = 0 always feasible");
            let expected = 1.0 / (k as f64 - 1.0);
            assert!(
                (r.best - expected).abs() < 1e-5,
                "k = {k}: got {} expected {expected}",
                r.best
            );
        }
    }

    #[test]
    fn single_point_saturates_upper_bound() {
        let r = maximize(0.0, 3.0, 1e-7, |d| separation_problem(1, d, 0.0, 1.0))
            .expect("single point unconstrained");
        assert_eq!(r.best, 3.0, "no pair constraints: every delta feasible");
        assert_eq!(r.solver_calls, 2, "fast path should trigger");
    }

    #[test]
    fn returns_none_when_floor_infeasible() {
        // Even delta = lo is infeasible: 2 points, separation 0.5 in a
        // 0.1-wide interval.
        let r = maximize(0.5, 1.0, 1e-7, |d| separation_problem(2, d, 0.0, 0.1));
        assert!(r.is_none());
    }

    #[test]
    fn model_is_feasible_at_best() {
        let r = maximize(0.0, 2.0, 1e-7, |d| separation_problem(3, d, 0.0, 1.0))
            .expect("feasible at 0");
        let p = separation_problem(3, r.best, 0.0, 1.0);
        assert!(r.model.satisfies(&p, 1e-6));
    }

    #[test]
    #[should_panic(expected = "empty search interval")]
    fn rejects_inverted_interval() {
        let _ = maximize(1.0, 0.0, 1e-6, |d| separation_problem(2, d, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rejects_zero_tolerance() {
        let _ = maximize(0.0, 1.0, 0.0, |d| separation_problem(2, d, 0.0, 1.0));
    }

    #[test]
    fn solver_call_count_is_logarithmic() {
        let r =
            maximize(0.0, 1.0, 1e-6, |d| separation_problem(2, d, 0.0, 1.0)).expect("feasible");
        // ~log2(1 / 1e-6) + 2 = ~22 calls.
        assert!(r.solver_calls < 30, "calls = {}", r.solver_calls);
    }
}

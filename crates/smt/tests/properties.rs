//! Property-based tests for the difference-logic SMT solver.

use fastsc_smt::{maximize, Problem, Var};
use proptest::prelude::*;

/// Generate a random assignment, then emit constraints consistent with it.
/// The solver must find *some* model (not necessarily the same one).
fn consistent_system() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        let values = proptest::collection::vec(-10.0f64..10.0, n);
        values.prop_flat_map(move |vals| {
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
                .collect();
            let vals2 = vals.clone();
            proptest::collection::vec((proptest::sample::select(pairs), 0.0f64..3.0), 0..12)
                .prop_map(move |picks| {
                    let constraints: Vec<(usize, usize, f64)> = picks
                        .into_iter()
                        .map(|((i, j), slack)| {
                            // x_i - x_j <= (v_i - v_j) + slack: satisfied by vals.
                            (i, j, vals2[i] - vals2[j] + slack)
                        })
                        .collect();
                    (n, constraints, vals2.clone())
                })
        })
    })
}

proptest! {
    #[test]
    fn satisfiable_systems_are_solved((n, constraints, _witness) in consistent_system()) {
        let mut p = Problem::new();
        let vars: Vec<Var> = (0..n).map(|_| p.new_var()).collect();
        // Keep variables bounded so the model is finite and normalized.
        for &v in &vars {
            p.add_bounds(v, -100.0, 100.0);
        }
        for &(i, j, bound) in &constraints {
            p.add_le(vars[i], vars[j], bound);
        }
        let model = p.solve().expect("system built from a witness is satisfiable");
        prop_assert!(model.satisfies(&p, 1e-6));
    }

    #[test]
    fn models_satisfy_all_clause_kinds(
        n in 2usize..5,
        delta in 0.01f64..0.2,
        alpha in -0.3f64..0.0,
    ) {
        let mut p = Problem::new();
        let vars: Vec<Var> = (0..n).map(|_| p.new_var()).collect();
        for &v in &vars {
            p.add_bounds(v, 6.0, 7.0);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                p.add_abs_ge(vars[i], 0.0, vars[j], delta);
                p.add_abs_ge(vars[i], alpha, vars[j], delta);
                p.add_abs_ge(vars[j], alpha, vars[i], delta);
            }
        }
        if let Some(m) = p.solve() {
            prop_assert!(m.satisfies(&p, 1e-6));
            for i in 0..n {
                for j in (i + 1)..n {
                    let (xi, xj) = (m.value(vars[i]), m.value(vars[j]));
                    prop_assert!((xi - xj).abs() >= delta - 1e-6);
                    prop_assert!((xi + alpha - xj).abs() >= delta - 1e-6);
                    prop_assert!((xj + alpha - xi).abs() >= delta - 1e-6);
                }
            }
        }
        // Small deltas with n <= 4 in a 1 GHz window must be satisfiable:
        // worst case needs (n-1) * (delta + |alpha|) <= 1.0.
        let needed = (n as f64 - 1.0) * (delta + alpha.abs());
        if needed < 0.9 {
            prop_assert!(p.solve().is_some(), "expected feasible: needed = {}", needed);
        }
    }

    #[test]
    fn contradiction_always_detected(n in 2usize..6, gap in 0.1f64..5.0) {
        // x0 > x1 > ... > x_{n-1} > x0 by `gap` is a negative cycle.
        let mut p = Problem::new();
        let vars: Vec<Var> = (0..n).map(|_| p.new_var()).collect();
        for i in 0..n {
            let next = vars[(i + 1) % n];
            p.add_ge(vars[i], next, gap); // x_i >= x_{i+1} + gap
        }
        prop_assert!(p.solve().is_none());
    }

    #[test]
    fn maximize_matches_closed_form(k in 2usize..6, width in 0.5f64..4.0) {
        // k points in [0, width]: max pairwise separation = width / (k-1).
        let r = maximize(0.0, width + 1.0, 1e-6, |d| {
            let mut p = Problem::new();
            let xs: Vec<Var> = (0..k).map(|_| p.new_var()).collect();
            for &x in &xs {
                p.add_bounds(x, 0.0, width);
            }
            for i in 0..k {
                for j in (i + 1)..k {
                    p.add_abs_ge(xs[i], 0.0, xs[j], d);
                }
            }
            p
        }).expect("0 separation always feasible");
        let expected = width / (k as f64 - 1.0);
        prop_assert!((r.best - expected).abs() < 1e-4,
            "k={}, width={}: got {} expected {}", k, width, r.best, expected);
    }

    #[test]
    fn maximize_monotone_in_width(k in 2usize..5) {
        let solve_width = |width: f64| {
            maximize(0.0, 10.0, 1e-6, |d| {
                let mut p = Problem::new();
                let xs: Vec<Var> = (0..k).map(|_| p.new_var()).collect();
                for &x in &xs {
                    p.add_bounds(x, 0.0, width);
                }
                for i in 0..k {
                    for j in (i + 1)..k {
                        p.add_abs_ge(xs[i], 0.0, xs[j], d);
                    }
                }
                p
            }).expect("feasible at 0").best
        };
        prop_assert!(solve_width(2.0) >= solve_width(1.0) - 1e-6);
    }
}

//! Property-based tests for the simulators: unitarity, trace preservation,
//! and physical bounds.

use fastsc_ir::{Circuit, Gate};
use fastsc_sim::qutrit::{basis_index, TwoTransmon};
use fastsc_sim::{DensityMatrix, StateVector};
use proptest::prelude::*;

fn build_circuit(n: usize, raw: &[(u8, usize, usize, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b, angle) in raw {
        match kind {
            0 => drop(c.push1(Gate::H, a).expect("valid")),
            1 => drop(c.push1(Gate::Rx(angle), a).expect("valid")),
            2 => drop(c.push1(Gate::Rz(angle), a).expect("valid")),
            3 => drop(c.push1(Gate::T, a).expect("valid")),
            k => {
                if a != b {
                    let gate = match k {
                        4 => Gate::Cnot,
                        5 => Gate::Cz,
                        6 => Gate::ISwap,
                        _ => Gate::SqrtISwap,
                    };
                    c.push2(gate, a, b).expect("valid");
                }
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn statevector_stays_normalized(
        raw in proptest::collection::vec((0u8..8, 0usize..4, 0usize..4, -3.0f64..3.0), 0..20),
    ) {
        let c = build_circuit(4, &raw);
        let mut psi = StateVector::zero(4);
        psi.apply_circuit(&c);
        prop_assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
        // Populations are probabilities.
        for q in 0..4 {
            let p = psi.excited_population(q);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }

    #[test]
    fn density_matrix_trace_preserved_under_channels(
        raw in proptest::collection::vec((0u8..8, 0usize..3, 0usize..3, -3.0f64..3.0), 0..8),
        gamma in 0.0f64..1.0,
        p_phi in 0.0f64..1.0,
        q in 0usize..3,
    ) {
        let c = build_circuit(3, &raw);
        let mut rho = DensityMatrix::zero(3);
        for inst in c.instructions() {
            rho.apply_instruction(inst);
        }
        rho.amplitude_damp(q, gamma);
        rho.phase_damp(q, p_phi);
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9, "trace {}", rho.trace());
        let purity = rho.purity();
        prop_assert!((1.0 / 8.0 - 1e-9..=1.0 + 1e-9).contains(&purity));
    }

    #[test]
    fn density_fidelity_matches_statevector_for_unitaries(
        raw in proptest::collection::vec((0u8..8, 0usize..3, 0usize..3, -3.0f64..3.0), 0..10),
    ) {
        let c = build_circuit(3, &raw);
        let mut psi = StateVector::zero(3);
        psi.apply_circuit(&c);
        let mut rho = DensityMatrix::zero(3);
        for inst in c.instructions() {
            rho.apply_instruction(inst);
        }
        prop_assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn qutrit_evolution_unitary(
        omega_a in 5.0f64..6.0,
        omega_b in 5.0f64..6.0,
        g in 0.001f64..0.02,
        t in 1.0f64..150.0,
        initial in 0usize..9,
    ) {
        let sys = TwoTransmon::new(omega_a, omega_b, g);
        let psi = sys.evolve(initial, t);
        let norm: f64 = psi.iter().map(|a| a.norm_sqr()).sum();
        prop_assert!((norm - 1.0).abs() < 1e-9, "norm {}", norm);
    }

    #[test]
    fn qutrit_conserves_excitation_number(
        detuning in -0.4f64..0.4,
        t in 1.0f64..120.0,
    ) {
        // The exchange coupling conserves total excitations: starting in
        // |01>, population stays in the {|01>, |10>} sector.
        let sys = TwoTransmon::new(5.44 + detuning, 5.44, 0.005);
        let psi = sys.evolve(basis_index(0, 1), t);
        let sector: f64 =
            psi[basis_index(0, 1)].norm_sqr() + psi[basis_index(1, 0)].norm_sqr();
        prop_assert!((sector - 1.0).abs() < 1e-9, "leaked out of N=1 sector: {}", sector);
    }

    #[test]
    fn qutrit_transition_probabilities_bounded(
        omega_a in 5.2f64..5.7,
        t in 1.0f64..100.0,
        from in 0usize..9,
        to in 0usize..9,
    ) {
        let sys = TwoTransmon::new(omega_a, 5.44, 0.005);
        let p = sys.transition_probability(from, to, t);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
    }
}

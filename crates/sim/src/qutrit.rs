//! Exact two-transmon three-level dynamics (paper Fig. 15 and App. B).
//!
//! Transmons are weakly anharmonic oscillators; the computational qubit
//! levels `|0>, |1>` sit below a third level `|2>` that participates in
//! both the intended `CZ` gate (`|11> <-> |20>` resonance) and leakage
//! errors. This module integrates the Schrödinger equation of two coupled
//! three-level transmons,
//!
//! ```text
//! H / 2pi = sum_q [ omega_q n_q + (alpha_q / 2) n_q (n_q - 1) ]
//!           + g (a^dag b + a b^dag)
//! ```
//!
//! in the rotating frame of the total excitation number (the coupling
//! conserves it, so the frame shift only changes global phases within each
//! sector), exactly, via Jacobi eigendecomposition of the 9x9 real
//! symmetric Hamiltonian.

use fastsc_ir::math::C64;

/// Dimension of the two-qutrit Hilbert space.
pub const DIM: usize = 9;

/// Basis index of `|n_a n_b>` (each level in `0..3`).
///
/// # Panics
///
/// Panics if either level exceeds 2.
pub fn basis_index(na: usize, nb: usize) -> usize {
    assert!(na < 3 && nb < 3, "transmon levels are truncated at |2>");
    3 * na + nb
}

/// Two capacitively coupled three-level transmons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoTransmon {
    /// 0-1 frequency of transmon A, GHz.
    pub omega_a: f64,
    /// 0-1 frequency of transmon B, GHz.
    pub omega_b: f64,
    /// Anharmonicity of A, GHz (negative).
    pub alpha_a: f64,
    /// Anharmonicity of B, GHz (negative).
    pub alpha_b: f64,
    /// Exchange coupling, GHz.
    pub g: f64,
}

impl TwoTransmon {
    /// A pair with the workspace default anharmonicity and coupling.
    pub fn new(omega_a: f64, omega_b: f64, g: f64) -> Self {
        TwoTransmon { omega_a, omega_b, alpha_a: -0.2, alpha_b: -0.2, g }
    }

    /// The Hamiltonian matrix (GHz, cyclic units) in the rotating frame
    /// `H - omega_b N`: real and symmetric.
    pub fn hamiltonian(&self) -> [[f64; DIM]; DIM] {
        let mut h = [[0.0; DIM]; DIM];
        let delta = self.omega_a - self.omega_b;
        for na in 0..3 {
            for nb in 0..3 {
                let i = basis_index(na, nb);
                h[i][i] = delta * na as f64
                    + 0.5 * self.alpha_a * (na * (na.max(1) - 1)) as f64
                    + 0.5 * self.alpha_b * (nb * (nb.max(1) - 1)) as f64;
            }
        }
        // g (a^dag b + a b^dag): |na, nb> <-> |na+1, nb-1>.
        for na in 0..2 {
            for nb in 1..3 {
                let i = basis_index(na, nb);
                let j = basis_index(na + 1, nb - 1);
                let amp = self.g * ((na + 1) as f64).sqrt() * (nb as f64).sqrt();
                h[i][j] += amp;
                h[j][i] += amp;
            }
        }
        h
    }

    /// Evolves the basis state `initial` for `t_ns` exactly:
    /// `psi(t) = V e^{-i 2 pi Lambda t} V^T e_initial` from a Jacobi
    /// eigendecomposition of the real symmetric Hamiltonian. Unitary to
    /// machine precision at any time.
    ///
    /// # Panics
    ///
    /// Panics if `t_ns < 0` or `initial >= 9`.
    pub fn evolve(&self, initial: usize, t_ns: f64) -> [C64; DIM] {
        assert!(initial < DIM, "basis index {initial} out of range");
        assert!(t_ns >= 0.0, "duration must be non-negative");
        let (eigenvalues, vectors) = jacobi_eigen(self.hamiltonian());
        // Coefficients in the eigenbasis: c_k = V^T e_initial = V[initial][k].
        let mut psi = [C64::real(0.0); DIM];
        let two_pi = 2.0 * std::f64::consts::PI;
        for k in 0..DIM {
            let coeff = vectors[initial][k];
            let phase = C64::cis(-two_pi * eigenvalues[k] * t_ns).scale(coeff);
            for (i, out) in psi.iter_mut().enumerate() {
                *out += phase.scale(vectors[i][k]);
            }
        }
        psi
    }

    /// Probability of ending in basis state `to` after evolving `from` for
    /// `t_ns`.
    pub fn transition_probability(&self, from: usize, to: usize, t_ns: f64) -> f64 {
        assert!(to < DIM, "basis index {to} out of range");
        self.evolve(from, t_ns)[to].norm_sqr()
    }
}

/// Jacobi eigendecomposition of a real symmetric matrix: returns
/// `(eigenvalues, V)` with columns of `V` the eigenvectors
/// (`A = V diag(lambda) V^T`).
#[allow(clippy::needless_range_loop)] // index-symmetric Givens rotations read clearer indexed
fn jacobi_eigen(mut a: [[f64; DIM]; DIM]) -> ([f64; DIM], [[f64; DIM]; DIM]) {
    let mut v = [[0.0f64; DIM]; DIM];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _rotation in 0..5000 {
        // Largest off-diagonal element.
        let mut off = 0.0f64;
        let (mut p, mut q) = (0usize, 1usize);
        for i in 0..DIM {
            for j in (i + 1)..DIM {
                if a[i][j].abs() > off {
                    off = a[i][j].abs();
                    p = i;
                    q = j;
                }
            }
        }
        if off < 1e-14 {
            break;
        }
        // Rotation angle zeroing a[p][q].
        let theta = 0.5 * (2.0 * a[p][q]).atan2(a[q][q] - a[p][p]);
        let (s, c) = theta.sin_cos();
        // A <- J^T A J with the Givens rotation J in the (p, q) plane.
        for i in 0..DIM {
            let (aip, aiq) = (a[i][p], a[i][q]);
            a[i][p] = c * aip - s * aiq;
            a[i][q] = s * aip + c * aiq;
        }
        for j in 0..DIM {
            let (apj, aqj) = (a[p][j], a[q][j]);
            a[p][j] = c * apj - s * aqj;
            a[q][j] = s * apj + c * aqj;
        }
        for i in 0..DIM {
            let (vip, viq) = (v[i][p], v[i][q]);
            v[i][p] = c * vip - s * viq;
            v[i][q] = s * vip + c * viq;
        }
    }
    let mut eigenvalues = [0.0f64; DIM];
    for i in 0..DIM {
        eigenvalues[i] = a[i][i];
    }
    (eigenvalues, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: f64 = 0.005;

    fn norm(psi: &[C64; DIM]) -> f64 {
        psi.iter().map(|a| a.norm_sqr()).sum()
    }

    #[test]
    fn evolution_preserves_norm() {
        let sys = TwoTransmon::new(5.44, 5.44, G);
        for t in [10.0, 50.0, 200.0] {
            let psi = sys.evolve(basis_index(0, 1), t);
            assert!((norm(&psi) - 1.0).abs() < 1e-6, "t = {t}: norm {}", norm(&psi));
        }
    }

    #[test]
    fn resonant_iswap_transfer_at_quarter_period() {
        // omega_a = omega_b: |01> fully transfers to |10> at t = 1/(4g).
        let sys = TwoTransmon::new(5.44, 5.44, G);
        let t = 1.0 / (4.0 * G);
        let p = sys.transition_probability(basis_index(0, 1), basis_index(1, 0), t);
        assert!(p > 0.999, "transfer probability {p}");
        // And returns at the half period.
        let p_back = sys.transition_probability(basis_index(0, 1), basis_index(0, 1), 2.0 * t);
        assert!(p_back > 0.99, "return probability {p_back}");
    }

    #[test]
    fn detuned_iswap_is_suppressed() {
        let sys = TwoTransmon::new(5.74, 5.44, G); // 300 MHz detuned
        let t = 1.0 / (4.0 * G);
        let p = sys.transition_probability(basis_index(0, 1), basis_index(1, 0), t);
        assert!(p < 0.02, "suppressed transfer {p}");
    }

    #[test]
    fn cz_resonance_at_anharmonicity_offset() {
        // |11> <-> |20> resonant when omega_a + alpha_a = omega_b, with
        // coupling sqrt(2) g: complete transfer at t = 1/(4 sqrt(2) g).
        let sys = TwoTransmon::new(5.64, 5.44, G); // alpha = -0.2
        let t = 1.0 / (4.0 * std::f64::consts::SQRT_2 * G);
        let p = sys.transition_probability(basis_index(1, 1), basis_index(2, 0), t);
        assert!(p > 0.99, "CZ-channel transfer {p}");
        // Complete CZ: population returns at twice that time (App. B).
        let p_return =
            sys.transition_probability(basis_index(1, 1), basis_index(1, 1), 2.0 * t);
        assert!(p_return > 0.98, "CZ return {p_return}");
    }

    #[test]
    fn cz_channel_off_resonance_when_aligned_01() {
        // At the iSWAP point (omega_a = omega_b) the |11> <-> |20> channel
        // is detuned by alpha: leakage from |11> stays bounded.
        let sys = TwoTransmon::new(5.44, 5.44, G);
        let t = 1.0 / (4.0 * G);
        let p20 = sys.transition_probability(basis_index(1, 1), basis_index(2, 0), t);
        let p02 = sys.transition_probability(basis_index(1, 1), basis_index(0, 2), t);
        assert!(p20 < 0.05, "leakage to |20>: {p20}");
        assert!(p02 < 0.05, "leakage to |02>: {p02}");
    }

    #[test]
    fn fig15_peak_structure_along_flux_axis() {
        // Sweeping omega_a with omega_b fixed: the 01->10 transfer after
        // t = 1/(4g) peaks at omega_a = omega_b, the 11->20 transfer at
        // omega_a = omega_b - alpha.
        let omega_b = 5.44;
        let probe = |omega_a: f64, from: (usize, usize), to: (usize, usize), t: f64| {
            TwoTransmon::new(omega_a, omega_b, G).transition_probability(
                basis_index(from.0, from.1),
                basis_index(to.0, to.1),
                t,
            )
        };
        let t_iswap = 1.0 / (4.0 * G);
        let sweep: Vec<f64> = (0..=40).map(|i| 5.34 + 0.005 * i as f64).collect();
        let iswap_peak = sweep
            .iter()
            .copied()
            .max_by(|&x, &y| {
                probe(x, (0, 1), (1, 0), t_iswap).total_cmp(&probe(y, (0, 1), (1, 0), t_iswap))
            })
            .expect("nonempty");
        assert!((iswap_peak - omega_b).abs() < 0.011, "iSWAP peak at {iswap_peak}");

        let t_cz = 1.0 / (4.0 * std::f64::consts::SQRT_2 * G);
        let sweep_cz: Vec<f64> = (0..=40).map(|i| 5.54 + 0.005 * i as f64).collect();
        let cz_peak = sweep_cz
            .iter()
            .copied()
            .max_by(|&x, &y| {
                probe(x, (1, 1), (2, 0), t_cz).total_cmp(&probe(y, (1, 1), (2, 0), t_cz))
            })
            .expect("nonempty");
        assert!((cz_peak - (omega_b + 0.2)).abs() < 0.011, "CZ peak at {cz_peak}");
    }

    #[test]
    fn hamiltonian_is_symmetric() {
        let h = TwoTransmon::new(5.5, 5.4, G).hamiltonian();
        for (i, row) in h.iter().enumerate() {
            for (j, &entry) in row.iter().enumerate() {
                assert!((entry - h[j][i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "truncated at |2>")]
    fn basis_index_rejects_high_levels() {
        let _ = basis_index(3, 0);
    }
}

//! An ideal state-vector simulator over the IR gate set.

use fastsc_ir::math::{Mat2, Mat4, C64, ZERO};
use fastsc_ir::unitary;
use fastsc_ir::{Circuit, Instruction, Operands};

/// A pure `n`-qubit state. Qubit 0 is the most significant bit of the
/// basis index (the `fastsc_ir::unitary` convention).
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amplitudes: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 26` (state would exceed memory).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 26, "state vector too large: {n_qubits} qubits");
        let mut amplitudes = vec![ZERO; 1 << n_qubits];
        amplitudes[0] = C64::real(1.0);
        StateVector { n_qubits, amplitudes }
    }

    /// A computational basis state `|index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits`.
    pub fn basis(n_qubits: usize, index: usize) -> Self {
        let mut s = StateVector::zero(n_qubits);
        assert!(index < s.amplitudes.len(), "basis index {index} out of range");
        s.amplitudes[0] = ZERO;
        s.amplitudes[index] = C64::real(1.0);
        s
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The raw amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amplitudes
    }

    /// Applies a single-qubit unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply1(&mut self, q: usize, m: &Mat2) {
        unitary::apply1(&mut self.amplitudes, self.n_qubits, q, m);
    }

    /// Applies a two-qubit unitary to `(a, b)` (`a` = gate MSB).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or `a == b`.
    pub fn apply2(&mut self, a: usize, b: usize, m: &Mat4) {
        unitary::apply2(&mut self.amplitudes, self.n_qubits, a, b, m);
    }

    /// Applies one IR instruction.
    pub fn apply_instruction(&mut self, inst: &Instruction) {
        match inst.operands {
            Operands::One(q) => {
                self.apply1(q, &inst.gate.matrix1().expect("validated arity"));
            }
            Operands::Two(a, b) => {
                self.apply2(a, b, &inst.gate.matrix2().expect("validated arity"));
            }
        }
    }

    /// Applies a whole circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(circuit.n_qubits() <= self.n_qubits, "circuit wider than state");
        for inst in circuit.instructions() {
            self.apply_instruction(inst);
        }
    }

    /// The probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// The probability that qubit `q` reads 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn excited_population(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << (self.n_qubits - 1 - q);
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Squared overlap `|<other|self>|^2` with another state.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n_qubits, other.n_qubits, "states must have equal width");
        let mut overlap = ZERO;
        for (a, b) in self.amplitudes.iter().zip(&other.amplitudes) {
            overlap += b.conj() * *a;
        }
        overlap.norm_sqr()
    }

    /// The squared norm (1 for physical states).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) zero.
    pub fn normalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 1e-300, "cannot normalize the zero vector");
        for a in &mut self.amplitudes {
            *a = a.scale(1.0 / norm);
        }
    }

    /// Mutable access for noise channels (norm may be temporarily broken;
    /// callers must renormalize).
    pub(crate) fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amplitudes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsc_ir::Gate;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero(3);
        assert_eq!(s.probability(0), 1.0);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.n_qubits(), 3);
    }

    #[test]
    fn basis_state_placement() {
        let s = StateVector::basis(2, 0b10);
        assert_eq!(s.probability(2), 1.0);
        // Qubit 0 is the MSB: |10> has qubit 0 excited.
        assert!((s.excited_population(0) - 1.0).abs() < 1e-15);
        assert_eq!(s.excited_population(1), 0.0);
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Cnot, 1, 2).expect("valid");
        let mut s = StateVector::zero(3);
        s.apply_circuit(&c);
        assert!((s.probability(0b000) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b111) - 0.5).abs() < 1e-12);
        for q in 0..3 {
            assert!((s.excited_population(q) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn fidelity_extremes() {
        let a = StateVector::basis(2, 1);
        let b = StateVector::basis(2, 2);
        assert_eq!(a.fidelity(&a), 1.0);
        assert_eq!(a.fidelity(&b), 0.0);
    }

    #[test]
    fn fidelity_of_rotated_state() {
        let mut a = StateVector::zero(1);
        a.apply1(0, &Gate::Ry(std::f64::consts::FRAC_PI_2).matrix1().expect("1q"));
        let z = StateVector::zero(1);
        assert!((a.fidelity(&z) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_recovers_unit_norm() {
        let mut s = StateVector::zero(1);
        s.amplitudes_mut()[0] = C64::real(0.5);
        s.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn fidelity_rejects_mismatched_widths() {
        let _ = StateVector::zero(1).fidelity(&StateVector::zero(2));
    }
}

//! Noisy quantum-circuit simulation for validating the success-rate
//! heuristic (paper §VI-C) and reproducing the two-transmon state-transition
//! maps of Fig. 15.
//!
//! Three layers:
//!
//! * [`StateVector`] — an ideal state-vector simulator over the IR's gate
//!   set (qubit 0 is the most significant bit, matching
//!   `fastsc_ir::unitary`);
//! * [`trajectory`] — Monte-Carlo noisy execution of a compiled
//!   [`Schedule`](fastsc_noise::Schedule): per cycle it applies the
//!   scheduled gates, then coherent residual-exchange crosstalk on every
//!   idle coupling (the detuned-Rabi unitary on the `{|01>, |10>}`
//!   subspace), then stochastic amplitude-damping and dephasing jumps per
//!   qubit;
//! * [`qutrit`] — an exact two-transmon three-level Hamiltonian integrator
//!   for the `|01> <-> |10>` (iSWAP) and `|11> <-> |20>` (CZ/leakage)
//!   resonance maps.
//!
//! # Example
//!
//! ```
//! use fastsc_sim::StateVector;
//! use fastsc_ir::{Circuit, Gate};
//!
//! let mut c = Circuit::new(2);
//! c.push1(Gate::H, 0)?;
//! c.push2(Gate::Cnot, 0, 1)?;
//! let mut psi = StateVector::zero(2);
//! psi.apply_circuit(&c);
//! assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
//! assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
//! # Ok::<(), fastsc_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod qutrit;
mod statevector;
pub mod trajectory;

pub use density::DensityMatrix;
pub use statevector::StateVector;
pub use trajectory::{simulate_success, TrajectoryOutcome};

//! Monte-Carlo noisy execution of compiled schedules.
//!
//! Each trajectory walks the schedule cycle by cycle:
//!
//! 1. the scheduled gate unitaries are applied (ideal);
//! 2. for every physical coupling *not* executing its own gate, the
//!    coherent residual exchange is applied on the `{|01>, |10>}` subspace
//!    of the pair — the detuned-Rabi unitary
//!    `exp(-i 2 pi t [[-d/2, g], [g, d/2]])` with `d` the 0-1 frequency
//!    difference and `g` the (coupler-attenuated) coupling;
//! 3. every qubit suffers stochastic amplitude damping (`T1`) and phase
//!    flips (pure dephasing derived from `T1`/`T2`).
//!
//! Averaging trajectory fidelities against the ideal final state gives a
//! simulated program success rate, which §VI-C uses to validate the
//! analytic estimator on small circuits. Leakage to the second excited
//! level is outside the qubit-level state space; the `|11> <-> |20>`
//! channel is validated separately by [`qutrit`](crate::qutrit).

use crate::statevector::StateVector;
use fastsc_device::Device;
use fastsc_ir::math::{Mat4, C64, ONE, ZERO};
use fastsc_noise::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Monte-Carlo success simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryOutcome {
    /// Mean fidelity of noisy trajectories against the ideal final state.
    pub success: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Trajectories simulated.
    pub trajectories: usize,
}

/// The `{|01>, |10>}` block of `exp(-i 2 pi t [[-d/2, g], [g, d/2]])`.
fn exchange_block(g: f64, delta: f64, t_ns: f64) -> [[C64; 2]; 2] {
    let omega = (g * g + 0.25 * delta * delta).sqrt();
    let theta = 2.0 * std::f64::consts::PI * omega * t_ns;
    let (cos_t, sin_t) = (theta.cos(), theta.sin());
    let (nx, nz) = if omega > 0.0 { (g / omega, -0.5 * delta / omega) } else { (0.0, 0.0) };
    // U = cos(theta) I - i sin(theta) (nx sx + nz sz).
    [
        [C64::new(cos_t, -sin_t * nz), C64::new(0.0, -sin_t * nx)],
        [C64::new(0.0, -sin_t * nx), C64::new(cos_t, sin_t * nz)],
    ]
}

/// The coupled-evolution unitary on the `{|01>, |10>}` subspace of a pair
/// (identity on `|00>` and `|11>`).
///
/// This is the exact rotating-frame evolution, so applying it cycle after
/// cycle over a constant-configuration stretch composes into the exact
/// longer evolution. The *ideal* reference applies the matching free
/// (`g = 0`) precession — the deterministic part a real control stack
/// tracks in software (virtual-Z) — so that fidelity against the ideal
/// state charges only the coupling-induced deviation.
fn exchange_unitary(g: f64, delta: f64, t_ns: f64) -> Mat4 {
    let u = exchange_block(g, delta, t_ns);
    [
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, u[0][0], u[0][1], ZERO],
        [ZERO, u[1][0], u[1][1], ZERO],
        [ZERO, ZERO, ZERO, ONE],
    ]
}

/// The free-precession unitary tracked by the ideal reference.
fn free_unitary(delta: f64, t_ns: f64) -> Mat4 {
    exchange_unitary(0.0, delta, t_ns)
}

/// Crate-public access to the exchange unitary for the exact
/// density-matrix simulator (same channel, applied without sampling).
pub(crate) fn exchange_unitary_pub(g: f64, delta: f64, t_ns: f64) -> Mat4 {
    exchange_unitary(g, delta, t_ns)
}

/// Applies one cycle's noise channels to `state` in place.
fn apply_cycle_noise<R: Rng + ?Sized>(
    state: &mut StateVector,
    device: &Device,
    cycle: &fastsc_noise::Cycle,
    rng: &mut R,
) {
    let t = cycle.duration_ns;
    let params = device.params();
    let busy = cycle.busy_couplings();

    // Coherent residual exchange on idle couplings (the free part of the
    // evolution is applied to the ideal reference too, so only the
    // coupling-induced deviation costs fidelity).
    for (_, (u, v)) in device.connectivity().edges() {
        if busy.contains(&(u, v)) {
            continue;
        }
        let coupler_on = cycle.active_couplings.contains(&(u, v));
        let factor = if device.coupler().is_tunable() && !coupler_on {
            device.coupler().inactive_factor()
        } else {
            1.0
        };
        let (wu, wv) = (cycle.frequencies[u], cycle.frequencies[v]);
        let g = factor * params.coupling_at(wu.max(wv));
        let delta = wu - wv;
        state.apply2(u, v, &exchange_unitary(g, delta, t));
    }

    // Stochastic decoherence per qubit.
    for q in 0..device.n_qubits() {
        let spec = device.qubit(q);
        let t_us = t * 1e-3;
        let gamma = 1.0 - (-t_us / spec.t1_us).exp();
        // Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1), clamped at 0.
        let inv_tphi = (1.0 / spec.t2_us - 0.5 / spec.t1_us).max(0.0);
        let p_phi = 1.0 - (-t_us * inv_tphi).exp();

        // Amplitude damping (trajectory unraveling).
        let p1 = state.excited_population(q);
        if rng.gen::<f64>() < gamma * p1 {
            // Jump: project |1> -> |0>.
            lower(state, q);
        } else {
            // No jump: |1> amplitude shrinks by sqrt(1 - gamma).
            damp_no_jump(state, q, gamma);
        }
        state.normalize();

        // Phase flip with probability p_phi / 2.
        if rng.gen::<f64>() < 0.5 * p_phi {
            let z = fastsc_ir::Gate::Z.matrix1().expect("1q");
            state.apply1(q, &z);
        }
    }
}

fn lower(state: &mut StateVector, q: usize) {
    let n = state.n_qubits();
    let mask = 1usize << (n - 1 - q);
    let dim = 1usize << n;
    let amplitudes = state.amplitudes_mut();
    for i in 0..dim {
        if i & mask != 0 {
            amplitudes[i ^ mask] = amplitudes[i];
            amplitudes[i] = ZERO;
        }
    }
}

fn damp_no_jump(state: &mut StateVector, q: usize, gamma: f64) {
    let n = state.n_qubits();
    let mask = 1usize << (n - 1 - q);
    let keep = (1.0 - gamma).sqrt();
    let amplitudes = state.amplitudes_mut();
    for (i, a) in amplitudes.iter_mut().enumerate() {
        if i & mask != 0 {
            *a = a.scale(keep);
        }
    }
}

/// Applies a uniformly random non-identity Pauli to the gate's qubits
/// (the trajectory-level analogue of the estimator's base gate error).
fn inject_pauli_error<R: Rng + ?Sized>(state: &mut StateVector, qubits: &[usize], rng: &mut R) {
    use fastsc_ir::Gate;
    let paulis = [Gate::X, Gate::Y, Gate::Z];
    loop {
        let mut any = false;
        let picks: Vec<Option<usize>> = qubits
            .iter()
            .map(|_| {
                let k = rng.gen_range(0..4);
                if k == 3 {
                    None
                } else {
                    any = true;
                    Some(k)
                }
            })
            .collect();
        if !any {
            continue; // all-identity excluded
        }
        for (&q, pick) in qubits.iter().zip(picks) {
            if let Some(k) = pick {
                state.apply1(q, &paulis[k].matrix1().expect("1q"));
            }
        }
        return;
    }
}

/// Runs one noisy trajectory of `schedule` from `|0...0>`.
pub fn run_trajectory<R: Rng + ?Sized>(
    device: &Device,
    schedule: &Schedule,
    rng: &mut R,
) -> StateVector {
    let params = *device.params();
    let mut state = StateVector::zero(schedule.n_qubits());
    for cycle in schedule.cycles() {
        for gate in &cycle.gates {
            state.apply_instruction(&gate.instruction);
            let qubits = gate.instruction.qubits();
            let base_error = if qubits.len() == 2 {
                params.base_two_qubit_error
            } else {
                params.base_single_qubit_error
            };
            if rng.gen::<f64>() < base_error {
                inject_pauli_error(&mut state, &qubits, rng);
            }
        }
        apply_cycle_noise(&mut state, device, cycle, rng);
    }
    state
}

/// The ideal final state of a schedule: noise-free gates plus the
/// deterministic free precession on every idle coupling (the phases a
/// calibrated control stack tracks in software).
pub fn ideal_state(device: &Device, schedule: &Schedule) -> StateVector {
    let mut state = StateVector::zero(schedule.n_qubits());
    for cycle in schedule.cycles() {
        for gate in &cycle.gates {
            state.apply_instruction(&gate.instruction);
        }
        let busy = cycle.busy_couplings();
        for (_, (u, v)) in device.connectivity().edges() {
            if busy.contains(&(u, v)) {
                continue;
            }
            let delta = cycle.frequencies[u] - cycle.frequencies[v];
            state.apply2(u, v, &free_unitary(delta, cycle.duration_ns));
        }
    }
    state
}

/// Monte-Carlo estimate of the simulated program success rate: the mean
/// fidelity of `trajectories` noisy runs against the ideal final state.
///
/// # Panics
///
/// Panics if `trajectories == 0` or the schedule is wider than 26 qubits.
pub fn simulate_success(
    device: &Device,
    schedule: &Schedule,
    trajectories: usize,
    seed: u64,
) -> TrajectoryOutcome {
    assert!(trajectories > 0, "at least one trajectory required");
    let ideal = ideal_state(device, schedule);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..trajectories {
        let noisy = run_trajectory(device, schedule, &mut rng);
        let f = noisy.fidelity(&ideal);
        sum += f;
        sum_sq += f * f;
    }
    let mean = sum / trajectories as f64;
    let var = (sum_sq / trajectories as f64 - mean * mean).max(0.0);
    TrajectoryOutcome {
        success: mean,
        std_error: (var / trajectories as f64).sqrt(),
        trajectories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsc_core::{Compiler, CompilerConfig, Strategy};
    use fastsc_device::DeviceBuilder;
    use fastsc_ir::math::mat4_approx_eq;
    use fastsc_noise::{estimate, NoiseConfig};
    use fastsc_workloads::Benchmark;

    #[test]
    fn exchange_unitary_is_unitary() {
        use fastsc_ir::math::is_unitary4;
        for (g, d, t) in [(0.005, 0.0, 50.0), (0.003, 0.4, 100.0), (0.0, 1.0, 10.0)] {
            assert!(is_unitary4(&exchange_unitary(g, d, t), 1e-12), "g={g} d={d}");
        }
    }

    #[test]
    fn resonant_exchange_is_full_iswap_like() {
        // delta = 0, t = 1/(4g): complete population transfer 01 -> 10.
        let g = 0.005;
        let u = exchange_unitary(g, 0.0, 1.0 / (4.0 * g));
        assert!(u[1][1].abs() < 1e-9);
        assert!((u[2][1].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detuned_exchange_is_amplitude_suppressed() {
        let g = 0.005;
        let delta = 0.5;
        // Maximum transfer over a full sweep of times.
        let max_transfer = (0..200)
            .map(|k| {
                let u = exchange_unitary(g, delta, k as f64);
                u[2][1].norm_sqr()
            })
            .fold(0.0f64, f64::max);
        let bound = g * g / (g * g + 0.25 * delta * delta);
        assert!(max_transfer <= bound * 1.01, "{max_transfer} vs bound {bound}");
    }

    #[test]
    fn zero_detuning_zero_coupling_is_identity() {
        let u = exchange_unitary(0.0, 0.0, 100.0);
        assert!(mat4_approx_eq(&u, &fastsc_ir::math::identity4(), 1e-12));
    }

    #[test]
    fn noiseless_device_reproduces_ideal() {
        // Very long coherence, no calibration error, ColorDynamic keeping
        // residual couplings far detuned => fidelity ~ 1.
        let mut b = DeviceBuilder::new(fastsc_graph::topology::grid(2, 2));
        let params = fastsc_device::DeviceParams {
            base_two_qubit_error: 0.0,
            base_single_qubit_error: 0.0,
            ..Default::default()
        };
        b.seed(1).coherence(1e9, 1e9).params(params);
        let device = b.build();
        let compiler = Compiler::new(device, CompilerConfig::default());
        let program = Benchmark::Xeb(4, 3).build(5);
        let compiled = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
        let out = simulate_success(compiler.device(), &compiled.schedule, 10, 3);
        assert!(out.success > 0.99, "success = {}", out.success);
    }

    #[test]
    fn decoherence_reduces_fidelity() {
        let mut b = DeviceBuilder::new(fastsc_graph::topology::grid(2, 2));
        b.seed(1).coherence(2.0, 1.5); // very lossy qubits
        let device = b.build();
        let compiler = Compiler::new(device, CompilerConfig::default());
        let program = Benchmark::Xeb(4, 5).build(5);
        let compiled = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
        let out = simulate_success(compiler.device(), &compiled.schedule, 40, 3);
        assert!(out.success < 0.9, "success = {}", out.success);
        assert!(out.std_error < 0.1);
    }

    #[test]
    fn amplitude_damping_relaxes_to_ground() {
        // A single excited qubit on a device with tiny T1 decays to |0>.
        let mut b = DeviceBuilder::new(fastsc_graph::topology::linear(2));
        b.seed(1).coherence(0.001, 0.001);
        let device = b.build();
        let mut schedule = Schedule::new(2);
        // One long idle cycle.
        schedule.push_cycle(fastsc_noise::Cycle {
            gates: vec![],
            frequencies: vec![4.5, 5.5],
            active_couplings: vec![],
            duration_ns: 10_000.0,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = StateVector::basis(2, 0b10);
        apply_cycle_noise(&mut state, &device, &schedule.cycles()[0], &mut rng);
        assert!(state.excited_population(0) < 0.01);
    }

    #[test]
    fn crosstalk_collision_hurts_simulated_fidelity() {
        // Two coupled qubits parked at the same frequency: the coherent
        // exchange corrupts any state with a single excitation.
        let mut b = DeviceBuilder::new(fastsc_graph::topology::linear(2));
        b.seed(1).coherence(1e9, 1e9);
        let device = b.build();
        let mk_schedule = |f1: f64, f2: f64| {
            let mut s = Schedule::new(2);
            s.push_cycle(fastsc_noise::Cycle {
                gates: vec![],
                frequencies: vec![f1, f2],
                active_couplings: vec![],
                duration_ns: 40.0,
            });
            s
        };
        let collide = mk_schedule(5.0, 5.0);
        let apart = mk_schedule(4.5, 5.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut psi_collide = StateVector::basis(2, 0b10);
        apply_cycle_noise(&mut psi_collide, &device, &collide.cycles()[0], &mut rng);
        let mut psi_apart = StateVector::basis(2, 0b10);
        apply_cycle_noise(&mut psi_apart, &device, &apart.cycles()[0], &mut rng);
        let reference = StateVector::basis(2, 0b10);
        assert!(psi_apart.fidelity(&reference) > 0.99);
        assert!(psi_collide.fidelity(&reference) < 0.9);
    }

    #[test]
    fn heuristic_and_simulation_agree_in_order_of_magnitude() {
        // §VI-C validation at miniature scale: the analytic worst-case
        // estimate must be a (not absurdly loose) lower bound on the
        // simulated success.
        let device = fastsc_device::Device::grid(2, 2, 7);
        let compiler = Compiler::new(device, CompilerConfig::default());
        let program = Benchmark::Xeb(4, 5).build(5);
        for strategy in [Strategy::ColorDynamic, Strategy::BaselineU] {
            let compiled = compiler.compile(&program, strategy).expect("compiles");
            let heuristic =
                estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default());
            let sim = simulate_success(compiler.device(), &compiled.schedule, 60, 11);
            assert!(
                heuristic.p_success <= sim.success + 0.1,
                "{strategy}: heuristic {} vs simulated {}",
                heuristic.p_success,
                sim.success
            );
            assert!(
                sim.success < heuristic.p_success + 0.6,
                "{strategy}: heuristic too loose: {} vs {}",
                heuristic.p_success,
                sim.success
            );
        }
    }
}

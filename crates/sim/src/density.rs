//! Exact open-system simulation with density matrices.
//!
//! The Monte-Carlo trajectories of [`trajectory`](crate::trajectory)
//! *sample* the noise channels; this module applies them *exactly* on a
//! density matrix, which is feasible for the few-qubit circuits used to
//! validate the sampling (`4^n` complex entries). Channels:
//!
//! * unitary gates: `rho -> U rho U^dag`;
//! * amplitude damping with rate `gamma`: Kraus
//!   `K0 = diag(1, sqrt(1-gamma))`, `K1 = sqrt(gamma) |0><1|`;
//! * phase damping with probability `p`: `rho -> (1-p/2) rho + (p/2) Z rho Z`;
//! * the coherent residual-exchange unitary on idle couplings (shared
//!   with the trajectory simulator).

use crate::statevector::StateVector;
use fastsc_device::Device;
use fastsc_ir::math::{Mat2, Mat4, C64, ZERO};
use fastsc_ir::{Instruction, Operands};
use fastsc_noise::Schedule;

/// An `n`-qubit density matrix (row-major `2^n x 2^n`). Qubit 0 is the
/// most significant bit, matching [`StateVector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    elements: Vec<C64>, // dim x dim, row-major
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 13` (the matrix would exceed memory).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 13, "density matrix too large: {n_qubits} qubits");
        let dim = 1usize << n_qubits;
        let mut elements = vec![ZERO; dim * dim];
        elements[0] = C64::real(1.0);
        DensityMatrix { n_qubits, elements }
    }

    /// The projector onto a pure state.
    pub fn from_pure(state: &StateVector) -> Self {
        let amps = state.amplitudes();
        let dim = amps.len();
        let mut elements = vec![ZERO; dim * dim];
        for (i, &ai) in amps.iter().enumerate() {
            for (j, &aj) in amps.iter().enumerate() {
                elements[i * dim + j] = ai * aj.conj();
            }
        }
        DensityMatrix { n_qubits: state.n_qubits(), elements }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn dim(&self) -> usize {
        1 << self.n_qubits
    }

    /// `<i| rho |j>`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn element(&self, i: usize, j: usize) -> C64 {
        let dim = self.dim();
        assert!(i < dim && j < dim, "index out of range");
        self.elements[i * dim + j]
    }

    /// The trace (1 for physical states).
    pub fn trace(&self) -> f64 {
        let dim = self.dim();
        (0..dim).map(|i| self.elements[i * dim + i].re).sum()
    }

    /// The purity `Tr(rho^2)` (1 for pure states, `1/2^n` maximally mixed).
    pub fn purity(&self) -> f64 {
        let dim = self.dim();
        let mut sum = 0.0;
        for i in 0..dim {
            for j in 0..dim {
                // Tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2
                // for Hermitian rho.
                sum += self.elements[i * dim + j].norm_sqr();
            }
        }
        sum
    }

    /// Fidelity `<psi| rho |psi>` with a pure state.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(self.n_qubits, psi.n_qubits(), "widths must match");
        let amps = psi.amplitudes();
        let dim = self.dim();
        let mut acc = ZERO;
        for i in 0..dim {
            for j in 0..dim {
                acc += amps[i].conj() * self.elements[i * dim + j] * amps[j];
            }
        }
        acc.re
    }

    /// Population of qubit `q` in `|1>`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn excited_population(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << (self.n_qubits - 1 - q);
        let dim = self.dim();
        (0..dim).filter(|i| i & mask != 0).map(|i| self.elements[i * dim + i].re).sum()
    }

    /// Applies a (general, not necessarily unitary) one-qubit operator:
    /// `rho -> M rho M^dag` *without normalization* — callers sum Kraus
    /// branches themselves.
    fn conjugate1(&self, q: usize, m: &Mat2) -> DensityMatrix {
        let mut left = self.clone();
        // Left-multiply: rows transform like a state vector per column.
        let dim = self.dim();
        for col in 0..dim {
            let mut column: Vec<C64> = (0..dim).map(|r| self.elements[r * dim + col]).collect();
            fastsc_ir::unitary::apply1(&mut column, self.n_qubits, q, m);
            for (r, v) in column.into_iter().enumerate() {
                left.elements[r * dim + col] = v;
            }
        }
        // Right-multiply by M^dag = conjugate the rows with M (conjugated).
        let m_conj: Mat2 = [[m[0][0].conj(), m[0][1].conj()], [m[1][0].conj(), m[1][1].conj()]];
        let mut out = left.clone();
        for rrow in 0..dim {
            let mut row: Vec<C64> = (0..dim).map(|c| left.elements[rrow * dim + c]).collect();
            fastsc_ir::unitary::apply1(&mut row, self.n_qubits, q, &m_conj);
            for (c, v) in row.into_iter().enumerate() {
                out.elements[rrow * dim + c] = v;
            }
        }
        out
    }

    fn conjugate2(&self, a: usize, b: usize, m: &Mat4) -> DensityMatrix {
        let dim = self.dim();
        let mut left = self.clone();
        for col in 0..dim {
            let mut column: Vec<C64> = (0..dim).map(|r| self.elements[r * dim + col]).collect();
            fastsc_ir::unitary::apply2(&mut column, self.n_qubits, a, b, m);
            for (r, v) in column.into_iter().enumerate() {
                left.elements[r * dim + col] = v;
            }
        }
        let mut m_conj = *m;
        for row in &mut m_conj {
            for v in row.iter_mut() {
                *v = v.conj();
            }
        }
        let mut out = left.clone();
        for rrow in 0..dim {
            let mut row: Vec<C64> = (0..dim).map(|c| left.elements[rrow * dim + c]).collect();
            fastsc_ir::unitary::apply2(&mut row, self.n_qubits, a, b, &m_conj);
            for (c, v) in row.into_iter().enumerate() {
                out.elements[rrow * dim + c] = v;
            }
        }
        out
    }

    /// Applies a unitary gate instruction.
    pub fn apply_instruction(&mut self, inst: &Instruction) {
        *self = match inst.operands {
            Operands::One(q) => {
                self.conjugate1(q, &inst.gate.matrix1().expect("validated arity"))
            }
            Operands::Two(a, b) => {
                self.conjugate2(a, b, &inst.gate.matrix2().expect("validated arity"))
            }
        };
    }

    /// Applies a two-qubit unitary directly (for noise channels).
    pub fn apply_unitary2(&mut self, a: usize, b: usize, m: &Mat4) {
        *self = self.conjugate2(a, b, m);
    }

    /// Exact amplitude damping on qubit `q` with decay probability
    /// `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `gamma` is in `[0, 1]`.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        let k0: Mat2 = [[C64::real(1.0), ZERO], [ZERO, C64::real((1.0 - gamma).sqrt())]];
        let k1: Mat2 = [[ZERO, C64::real(gamma.sqrt())], [ZERO, ZERO]];
        let branch0 = self.conjugate1(q, &k0);
        let branch1 = self.conjugate1(q, &k1);
        for (o, (b0, b1)) in
            self.elements.iter_mut().zip(branch0.elements.iter().zip(&branch1.elements))
        {
            *o = *b0 + *b1;
        }
    }

    /// Exact phase damping on qubit `q`:
    /// `rho -> (1 - p/2) rho + (p/2) Z rho Z`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn phase_damp(&mut self, q: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        let z = fastsc_ir::Gate::Z.matrix1().expect("1q");
        let flipped = self.conjugate1(q, &z);
        for (o, f) in self.elements.iter_mut().zip(&flipped.elements) {
            *o = o.scale(1.0 - 0.5 * p) + f.scale(0.5 * p);
        }
    }
}

/// Exact (channel-level) noisy execution of a schedule, mirroring the
/// trajectory simulator's noise model, and the fidelity against the same
/// ideal reference.
///
/// # Panics
///
/// Panics if the schedule is wider than 13 qubits.
pub fn exact_success(device: &Device, schedule: &Schedule) -> f64 {
    let params = device.params();
    let mut rho = DensityMatrix::zero(schedule.n_qubits());
    for cycle in schedule.cycles() {
        for gate in &cycle.gates {
            rho.apply_instruction(&gate.instruction);
            // Base gate error as a depolarizing-style channel: with
            // probability eps replace by the maximally mixed marginal —
            // approximated by uniform Pauli mixing on the operands.
            let qubits = gate.instruction.qubits();
            let eps = if qubits.len() == 2 {
                params.base_two_qubit_error
            } else {
                params.base_single_qubit_error
            };
            if eps > 0.0 {
                for q in qubits {
                    depolarize1(&mut rho, q, eps);
                }
            }
        }
        let t = cycle.duration_ns;
        let busy = cycle.busy_couplings();
        for (_, (u, v)) in device.connectivity().edges() {
            if busy.contains(&(u, v)) {
                continue;
            }
            let coupler_on = cycle.active_couplings.contains(&(u, v));
            let factor = if device.coupler().is_tunable() && !coupler_on {
                device.coupler().inactive_factor()
            } else {
                1.0
            };
            let (wu, wv) = (cycle.frequencies[u], cycle.frequencies[v]);
            let g = factor * params.coupling_at(wu.max(wv));
            rho.apply_unitary2(u, v, &crate::trajectory::exchange_unitary_pub(g, wu - wv, t));
        }
        for q in 0..device.n_qubits() {
            let spec = device.qubit(q);
            let t_us = t * 1e-3;
            let gamma = 1.0 - (-t_us / spec.t1_us).exp();
            let inv_tphi = (1.0 / spec.t2_us - 0.5 / spec.t1_us).max(0.0);
            let p_phi = 1.0 - (-t_us * inv_tphi).exp();
            rho.amplitude_damp(q, gamma);
            rho.phase_damp(q, p_phi);
        }
    }
    let ideal = crate::trajectory::ideal_state(device, schedule);
    rho.fidelity_with_pure(&ideal)
}

fn depolarize1(rho: &mut DensityMatrix, q: usize, eps: f64) {
    use fastsc_ir::Gate;
    let branches = [Gate::X, Gate::Y, Gate::Z];
    let originals = rho.clone();
    for v in rho.elements.iter_mut() {
        *v = v.scale(1.0 - eps);
    }
    for g in branches {
        let b = originals.conjugate1(q, &g.matrix1().expect("1q"));
        for (o, bv) in rho.elements.iter_mut().zip(&b.elements) {
            *o += bv.scale(eps / 3.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsc_ir::{Circuit, Gate};

    #[test]
    fn zero_state_is_pure_with_unit_trace() {
        let rho = DensityMatrix::zero(2);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.element(0, 0).approx_eq(C64::real(1.0), 1e-15));
    }

    #[test]
    fn unitary_gates_match_statevector() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push1(Gate::T, 1).expect("valid");
        let mut psi = StateVector::zero(2);
        psi.apply_circuit(&c);
        let mut rho = DensityMatrix::zero(2);
        for inst in c.instructions() {
            rho.apply_instruction(inst);
        }
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_pure_matches_population() {
        let mut psi = StateVector::zero(1);
        psi.apply1(0, &Gate::Ry(1.0).matrix1().expect("1q"));
        let rho = DensityMatrix::from_pure(&psi);
        assert!((rho.excited_population(0) - psi.excited_population(0)).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let psi = StateVector::basis(1, 1);
        let mut rho = DensityMatrix::from_pure(&psi);
        rho.amplitude_damp(0, 0.3);
        assert!((rho.excited_population(0) - 0.7).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        // Full damping lands in |0>.
        rho.amplitude_damp(0, 1.0);
        assert!(rho.excited_population(0) < 1e-12);
    }

    #[test]
    fn phase_damping_kills_coherence_not_population() {
        let mut psi = StateVector::zero(1);
        psi.apply1(0, &Gate::H.matrix1().expect("1q"));
        let mut rho = DensityMatrix::from_pure(&psi);
        let before = rho.element(0, 1).abs();
        rho.phase_damp(0, 0.5);
        let after = rho.element(0, 1).abs();
        assert!(after < before, "coherence must shrink");
        assert!((rho.excited_population(0) - 0.5).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        // Complete dephasing: off-diagonal vanishes.
        rho.phase_damp(0, 1.0);
        assert!(rho.element(0, 1).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut rho = DensityMatrix::zero(1);
        depolarize1(&mut rho, 0, 0.5);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn trajectory_sampling_converges_to_exact_channel() {
        // The validation this module exists for: Monte-Carlo trajectories
        // must converge to the exact density-matrix evolution.
        use fastsc_core::{Compiler, CompilerConfig, Strategy};
        use fastsc_device::Device;

        let device = Device::grid(2, 2, 7);
        let compiler = Compiler::new(device, CompilerConfig::default());
        let program = fastsc_workloads::Benchmark::Xeb(4, 4).build(5);
        let compiled = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
        let exact = exact_success(compiler.device(), &compiled.schedule);
        let sampled =
            crate::trajectory::simulate_success(compiler.device(), &compiled.schedule, 400, 13);
        assert!(
            (exact - sampled.success).abs() < 4.0 * sampled.std_error + 0.02,
            "exact {exact} vs sampled {} (+/- {})",
            sampled.success,
            sampled.std_error
        );
    }

    #[test]
    fn exact_success_degrades_with_lossy_qubits() {
        use fastsc_core::{Compiler, CompilerConfig, Strategy};
        use fastsc_device::DeviceBuilder;
        let mut good = DeviceBuilder::new(fastsc_graph::topology::grid(2, 2));
        good.seed(1).coherence(1e6, 1e6);
        let mut bad = DeviceBuilder::new(fastsc_graph::topology::grid(2, 2));
        bad.seed(1).coherence(2.0, 1.5);
        let program = fastsc_workloads::Benchmark::Xeb(4, 4).build(5);
        let mut scores = Vec::new();
        for device in [good.build(), bad.build()] {
            let compiler = Compiler::new(device, CompilerConfig::default());
            let compiled =
                compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
            scores.push(exact_success(compiler.device(), &compiled.schedule));
        }
        assert!(scores[0] > scores[1] + 0.05, "good {} vs bad {}", scores[0], scores[1]);
    }
}

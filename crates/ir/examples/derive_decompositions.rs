//! Derivation tool for the two-qubit decomposition identities hard-coded in
//! `fastsc_ir::decompose`.
//!
//! Exhaustively searches circuits of the form
//! `L3 . M . L2 . M . L1` (matrix order; `L1` executes first), where each
//! `Li = Ai (x) Bi` is a pair of single-qubit Cliffords/rotations and `M` is
//! the entangling native gate, for sequences equal (up to global phase) to
//! `CNOT` and `CZ`. Run with `--release`; prints every found identity and
//! stops after the first per target.
//!
//! ```bash
//! cargo run -p fastsc-ir --release --example derive_decompositions
//! ```

use fastsc_ir::math::{kron2, mat4_eq_up_to_phase, matmul4, Mat2, Mat4};
use fastsc_ir::Gate;

fn locals() -> Vec<(String, Mat2)> {
    use std::f64::consts::FRAC_PI_2;
    let named: Vec<(&str, Gate)> = vec![
        ("I", Gate::Id),
        ("H", Gate::H),
        ("S", Gate::S),
        ("Sdg", Gate::Sdg),
        ("X", Gate::X),
        ("Z", Gate::Z),
        ("Rx(+)", Gate::Rx(FRAC_PI_2)),
        ("Rx(-)", Gate::Rx(-FRAC_PI_2)),
        ("Ry(+)", Gate::Ry(FRAC_PI_2)),
        ("Ry(-)", Gate::Ry(-FRAC_PI_2)),
        ("Rz(+)", Gate::Rz(FRAC_PI_2)),
        ("Rz(-)", Gate::Rz(-FRAC_PI_2)),
    ];
    named.into_iter().map(|(n, g)| (n.to_owned(), g.matrix1().expect("1q gate"))).collect()
}

fn search(target_name: &str, target: &Mat4, m: &Mat4) {
    let ls = locals();
    // Pairs Ai (x) Bi.
    let mut pairs: Vec<(String, Mat4)> = Vec::new();
    for (na, a) in &ls {
        for (nb, b) in &ls {
            pairs.push((format!("{na}(x){nb}"), kron2(a, b)));
        }
    }
    // Precompute M * L1 and L3 * M.
    let right: Vec<(usize, Mat4)> =
        pairs.iter().enumerate().map(|(i, (_, l))| (i, matmul4(m, l))).collect();
    let left: Vec<(usize, Mat4)> =
        pairs.iter().enumerate().map(|(i, (_, l))| (i, matmul4(l, m))).collect();

    for (i3, lm) in &left {
        for (i2, (_, l2)) in pairs.iter().enumerate() {
            let lml2 = matmul4(lm, l2);
            for (i1, ml1) in &right {
                let u = matmul4(&lml2, ml1);
                if mat4_eq_up_to_phase(&u, target, 1e-9) {
                    println!(
                        "{target_name} = [{}] . M . [{}] . M . [{}]",
                        pairs[*i3].0, pairs[i2].0, pairs[*i1].0
                    );
                    return;
                }
            }
        }
    }
    println!("{target_name}: no sequence found with this local set");
}

fn main() {
    let cnot = Gate::Cnot.matrix2().expect("2q");
    let cz = Gate::Cz.matrix2().expect("2q");
    let iswap = Gate::ISwap.matrix2().expect("2q");
    let sqiswap = Gate::SqrtISwap.matrix2().expect("2q");

    println!("== using M = iSWAP ==");
    search("CNOT", &cnot, &iswap);
    search("CZ", &cz, &iswap);
    println!("== using M = sqrt(iSWAP) ==");
    search("CNOT", &cnot, &sqiswap);
    search("CZ", &cz, &sqiswap);
}

//! Dense circuit unitaries and state-vector application.
//!
//! Used by decomposition-equivalence tests and by the noisy simulator.
//! Convention: **qubit 0 is the most significant bit** of the state index,
//! so a two-qubit circuit acting on `(0, 1)` has exactly the matrices of
//! [`Gate::matrix2`](crate::Gate::matrix2).

use crate::circuit::{Circuit, Operands};
use crate::math::{Mat2, Mat4, C64, ZERO};

/// Applies a single-qubit unitary to qubit `q` of an `n`-qubit state.
///
/// # Panics
///
/// Panics if `state.len() != 2^n` or `q >= n`.
pub fn apply1(state: &mut [C64], n: usize, q: usize, m: &Mat2) {
    assert_eq!(state.len(), 1 << n, "state length must be 2^n");
    assert!(q < n, "qubit {q} out of range for {n}-qubit state");
    let bit = n - 1 - q;
    let mask = 1usize << bit;
    for idx in 0..state.len() {
        if idx & mask == 0 {
            let j = idx | mask;
            let (a0, a1) = (state[idx], state[j]);
            state[idx] = m[0][0] * a0 + m[0][1] * a1;
            state[j] = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

/// Applies a two-qubit unitary to qubits `(qa, qb)` of an `n`-qubit state;
/// `qa` is the most significant bit of the gate's 4-dimensional basis.
///
/// # Panics
///
/// Panics if `state.len() != 2^n`, either qubit is out of range, or
/// `qa == qb`.
pub fn apply2(state: &mut [C64], n: usize, qa: usize, qb: usize, m: &Mat4) {
    assert_eq!(state.len(), 1 << n, "state length must be 2^n");
    assert!(qa < n && qb < n, "qubits ({qa}, {qb}) out of range for {n}-qubit state");
    assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
    let ma = 1usize << (n - 1 - qa);
    let mb = 1usize << (n - 1 - qb);
    for idx in 0..state.len() {
        if idx & ma == 0 && idx & mb == 0 {
            let i00 = idx;
            let i01 = idx | mb;
            let i10 = idx | ma;
            let i11 = idx | ma | mb;
            let v = [state[i00], state[i01], state[i10], state[i11]];
            for (r, &target) in [i00, i01, i10, i11].iter().enumerate() {
                state[target] =
                    m[r][0] * v[0] + m[r][1] * v[1] + m[r][2] * v[2] + m[r][3] * v[3];
            }
        }
    }
}

/// Applies every instruction of `circuit` to `state` in order.
///
/// # Panics
///
/// Panics if `state.len() != 2^circuit.n_qubits()`.
pub fn apply_circuit(state: &mut [C64], circuit: &Circuit) {
    let n = circuit.n_qubits();
    for inst in circuit.instructions() {
        match inst.operands {
            Operands::One(q) => {
                let m = inst.gate.matrix1().expect("arity checked at construction");
                apply1(state, n, q, &m);
            }
            Operands::Two(a, b) => {
                let m = inst.gate.matrix2().expect("arity checked at construction");
                apply2(state, n, a, b, &m);
            }
        }
    }
}

/// The dense `2^n x 2^n` unitary of `circuit`, column by column.
///
/// Intended for small circuits (equivalence checks); memory is `4^n`
/// complex numbers.
pub fn circuit_unitary(circuit: &Circuit) -> Vec<Vec<C64>> {
    let dim = 1usize << circuit.n_qubits();
    let mut columns = Vec::with_capacity(dim);
    for j in 0..dim {
        let mut state = vec![ZERO; dim];
        state[j] = C64::real(1.0);
        apply_circuit(&mut state, circuit);
        columns.push(state);
    }
    // Transpose columns into row-major form.
    let mut rows = vec![vec![ZERO; dim]; dim];
    for (j, col) in columns.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            rows[i][j] = v;
        }
    }
    rows
}

/// Whether two same-size dense matrices are equal up to a global phase.
pub fn matrices_equal_up_to_phase(a: &[Vec<C64>], b: &[Vec<C64>], tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // Anchor the phase at the largest entry of b.
    let mut best = (0usize, 0usize);
    let mut best_mag = 0.0f64;
    for (i, row) in b.iter().enumerate() {
        if row.len() != a[i].len() {
            return false;
        }
        for (j, &v) in row.iter().enumerate() {
            if v.abs() > best_mag {
                best_mag = v.abs();
                best = (i, j);
            }
        }
    }
    if best_mag < tol {
        // b ~ 0: require a ~ 0 as well.
        return a.iter().flatten().all(|v| v.abs() <= tol);
    }
    let (bi, bj) = best;
    if a[bi][bj].abs() < tol {
        return false;
    }
    let phase = a[bi][bj] / b[bi][bj];
    if (phase.abs() - 1.0).abs() > tol {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| x.approx_eq(*y * phase, tol)))
}

/// The probability of measuring basis state `idx`.
///
/// # Panics
///
/// Panics if `idx >= state.len()`.
pub fn probability(state: &[C64], idx: usize) -> f64 {
    state[idx].norm_sqr()
}

/// The squared norm of a state (1 for normalized states).
pub fn norm_sqr(state: &[C64]) -> f64 {
    state.iter().map(|v| v.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    const TOL: f64 = 1e-12;

    #[test]
    fn hadamard_makes_plus_state() {
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).expect("valid");
        let mut state = vec![C64::real(1.0), ZERO];
        apply_circuit(&mut state, &c);
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!(state[0].approx_eq(C64::real(inv_sqrt2), TOL));
        assert!(state[1].approx_eq(C64::real(inv_sqrt2), TOL));
    }

    #[test]
    fn bell_state_from_h_cnot() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        let mut state = vec![ZERO; 4];
        state[0] = C64::real(1.0);
        apply_circuit(&mut state, &c);
        assert!((probability(&state, 0) - 0.5).abs() < TOL);
        assert!((probability(&state, 3) - 0.5).abs() < TOL);
        assert!(probability(&state, 1) < TOL);
        assert!((norm_sqr(&state) - 1.0).abs() < TOL);
    }

    #[test]
    fn two_qubit_unitary_matches_gate_matrix() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        let u = circuit_unitary(&c);
        let m = Gate::Cnot.matrix2().expect("two-qubit");
        for i in 0..4 {
            for j in 0..4 {
                assert!(u[i][j].approx_eq(m[i][j], TOL), "({i},{j})");
            }
        }
    }

    #[test]
    fn reversed_cnot_differs() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cnot, 1, 0).expect("valid");
        let u = circuit_unitary(&c);
        // CNOT with control q1: |01> -> |11> i.e. column 1 maps to row 3.
        assert!(u[3][1].approx_eq(C64::real(1.0), TOL));
        assert!(u[1][3].approx_eq(C64::real(1.0), TOL));
    }

    #[test]
    fn unitarity_of_random_circuit() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::T, 1).expect("valid");
        c.push2(Gate::ISwap, 0, 2).expect("valid");
        c.push1(Gate::Rx(0.3), 2).expect("valid");
        c.push2(Gate::Cz, 1, 2).expect("valid");
        let u = circuit_unitary(&c);
        // Columns are orthonormal.
        for j in 0..8 {
            for k in 0..8 {
                let dot: C64 =
                    (0..8).map(|i| u[i][j].conj() * u[i][k]).fold(ZERO, |acc, v| acc + v);
                let expect = if j == k { 1.0 } else { 0.0 };
                assert!(
                    (dot.re - expect).abs() < 1e-10 && dot.im.abs() < 1e-10,
                    "columns {j},{k}"
                );
            }
        }
    }

    #[test]
    fn phase_equality_detects_phase() {
        let mut c1 = Circuit::new(1);
        c1.push1(Gate::Z, 0).expect("valid");
        let mut c2 = Circuit::new(1);
        // Rz(pi) = diag(e^{-i pi/2}, e^{i pi/2}) = -i * Z.
        c2.push1(Gate::Rz(std::f64::consts::PI), 0).expect("valid");
        let u1 = circuit_unitary(&c1);
        let u2 = circuit_unitary(&c2);
        assert!(matrices_equal_up_to_phase(&u1, &u2, 1e-12));
        let mut c3 = Circuit::new(1);
        c3.push1(Gate::X, 0).expect("valid");
        assert!(!matrices_equal_up_to_phase(&u1, &circuit_unitary(&c3), 1e-9));
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.push1(Gate::X, 0).expect("valid");
        c.push2(Gate::Swap, 0, 1).expect("valid");
        let mut state = vec![ZERO; 4];
        state[0] = C64::real(1.0);
        apply_circuit(&mut state, &c);
        // X on q0 gives |10> (index 2); SWAP moves it to |01> (index 1).
        assert!((probability(&state, 1) - 1.0).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "state length must be 2^n")]
    fn apply1_rejects_bad_length() {
        let mut state = vec![ZERO; 3];
        apply1(&mut state, 2, 0, &crate::math::identity2());
    }
}

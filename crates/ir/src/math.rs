//! Minimal complex arithmetic and small-matrix helpers.
//!
//! The workspace deliberately avoids external numerics crates; gate
//! unitaries are 2x2 / 4x4 complex matrices, and the simulator needs little
//! more than multiply, conjugate and norm. Everything here is `f64`-based.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The real unit.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// Zero.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The imaginary unit.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates `re + i*im`.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a real number.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        C64 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }

    /// Whether both components are within `tol` of `other`'s.
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64 { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// A 2x2 complex matrix, row-major.
pub type Mat2 = [[C64; 2]; 2];
/// A 4x4 complex matrix, row-major.
pub type Mat4 = [[C64; 4]; 4];

/// The 2x2 identity.
pub const fn identity2() -> Mat2 {
    [[ONE, ZERO], [ZERO, ONE]]
}

/// The 4x4 identity.
pub const fn identity4() -> Mat4 {
    [
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, ONE, ZERO, ZERO],
        [ZERO, ZERO, ONE, ZERO],
        [ZERO, ZERO, ZERO, ONE],
    ]
}

/// Product of two 2x2 matrices: `a * b`.
pub fn matmul2(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            for (k, bk) in b.iter().enumerate() {
                *cell += a[i][k] * bk[j];
            }
        }
    }
    out
}

/// Product of two 4x4 matrices: `a * b`.
pub fn matmul4(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            for (k, bk) in b.iter().enumerate() {
                *cell += a[i][k] * bk[j];
            }
        }
    }
    out
}

/// Kronecker product `a (x) b` of two 2x2 matrices; the first factor is the
/// most significant qubit.
pub fn kron2(a: &Mat2, b: &Mat2) -> Mat4 {
    let mut out = [[ZERO; 4]; 4];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    out[2 * i + k][2 * j + l] = a[i][j] * b[k][l];
                }
            }
        }
    }
    out
}

/// Conjugate transpose of a 2x2 matrix.
pub fn dagger2(m: &Mat2) -> Mat2 {
    let mut out = [[ZERO; 2]; 2];
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v.conj();
        }
    }
    out
}

/// Conjugate transpose of a 4x4 matrix.
pub fn dagger4(m: &Mat4) -> Mat4 {
    let mut out = [[ZERO; 4]; 4];
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v.conj();
        }
    }
    out
}

/// Whether `m` is unitary within tolerance `tol` (checks `m m^dag = I`).
pub fn is_unitary2(m: &Mat2, tol: f64) -> bool {
    mat2_approx_eq(&matmul2(m, &dagger2(m)), &identity2(), tol)
}

/// Whether `m` is unitary within tolerance `tol` (checks `m m^dag = I`).
pub fn is_unitary4(m: &Mat4, tol: f64) -> bool {
    mat4_approx_eq(&matmul4(m, &dagger4(m)), &identity4(), tol)
}

/// Element-wise approximate equality of 2x2 matrices.
pub fn mat2_approx_eq(a: &Mat2, b: &Mat2, tol: f64) -> bool {
    a.iter().zip(b).all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| x.approx_eq(*y, tol)))
}

/// Element-wise approximate equality of 4x4 matrices.
pub fn mat4_approx_eq(a: &Mat4, b: &Mat4, tol: f64) -> bool {
    a.iter().zip(b).all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| x.approx_eq(*y, tol)))
}

/// Whether `a = e^{i phi} b` for some global phase `phi`, within `tol`.
pub fn mat4_eq_up_to_phase(a: &Mat4, b: &Mat4, tol: f64) -> bool {
    // Find the largest-magnitude entry of b to fix the phase.
    let mut best = (0usize, 0usize);
    let mut best_mag = 0.0;
    for (i, row) in b.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v.abs() > best_mag {
                best_mag = v.abs();
                best = (i, j);
            }
        }
    }
    if best_mag < tol {
        return mat4_approx_eq(a, b, tol);
    }
    let (bi, bj) = best;
    if a[bi][bj].abs() < tol {
        return false;
    }
    let phase = a[bi][bj] / b[bi][bj];
    // The ratio must itself be a pure phase.
    if (phase.abs() - 1.0).abs() > tol {
        return false;
    }
    let mut scaled = *b;
    for row in &mut scaled {
        for v in row.iter_mut() {
            *v *= phase;
        }
    }
    mat4_approx_eq(a, &scaled, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn complex_field_ops() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!((a / b * b).approx_eq(a, 1e-12));
        assert_eq!(-a, C64::new(-1.0, -2.0));
        assert_eq!(a.conj(), C64::new(1.0, -2.0));
        assert!((a.norm_sqr() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..8 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_4;
            assert!((C64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
        assert!(C64::cis(std::f64::consts::PI).approx_eq(C64::real(-1.0), 1e-12));
    }

    #[test]
    fn matmul2_identity() {
        let h = [
            [C64::real(FRAC_1_SQRT_2), C64::real(FRAC_1_SQRT_2)],
            [C64::real(FRAC_1_SQRT_2), C64::real(-FRAC_1_SQRT_2)],
        ];
        assert!(mat2_approx_eq(&matmul2(&h, &identity2()), &h, 1e-12));
        // H^2 = I.
        assert!(mat2_approx_eq(&matmul2(&h, &h), &identity2(), 1e-12));
        assert!(is_unitary2(&h, 1e-12));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        assert!(mat4_approx_eq(&kron2(&identity2(), &identity2()), &identity4(), 1e-15));
    }

    #[test]
    fn kron_ordering_first_factor_msb() {
        // X (x) I flips the most significant qubit: |00> -> |10> (0 -> 2).
        let x = [[ZERO, ONE], [ONE, ZERO]];
        let m = kron2(&x, &identity2());
        assert!(m[2][0].approx_eq(ONE, 1e-15));
        assert!(m[0][2].approx_eq(ONE, 1e-15));
        assert!(m[0][0].approx_eq(ZERO, 1e-15));
    }

    #[test]
    fn dagger_reverses_products() {
        let s: Mat2 = [[ONE, ZERO], [ZERO, I]];
        let x: Mat2 = [[ZERO, ONE], [ONE, ZERO]];
        let sx = matmul2(&s, &x);
        let expect = matmul2(&dagger2(&x), &dagger2(&s));
        assert!(mat2_approx_eq(&dagger2(&sx), &expect, 1e-12));
    }

    #[test]
    fn phase_equivalence_detects_global_phase() {
        let mut a = identity4();
        for row in &mut a {
            for v in row.iter_mut() {
                *v *= C64::cis(0.7);
            }
        }
        assert!(mat4_eq_up_to_phase(&a, &identity4(), 1e-12));
        // But not for a non-phase difference.
        let mut b = identity4();
        b[0][0] = C64::real(2.0);
        assert!(!mat4_eq_up_to_phase(&b, &identity4(), 1e-9));
    }

    #[test]
    fn phase_equivalence_rejects_different_structure() {
        let x = [[ZERO, ONE], [ONE, ZERO]];
        let xi = kron2(&x, &identity2());
        assert!(!mat4_eq_up_to_phase(&xi, &identity4(), 1e-9));
    }
}

//! Lowering of program gates to the tunable-transmon native set
//! (paper Fig. 8 and §V-B5).
//!
//! Tunable transmons natively implement `CZ` (via the `|11> <-> |20>`
//! resonance), `iSWAP` and `sqrt(iSWAP)` (via `|01> <-> |10>`), plus
//! arbitrary microwave single-qubit rotations. Program-level `CNOT` and
//! `SWAP` gates must be rewritten:
//!
//! * `CNOT = (I (x) H) . CZ . (I (x) H)` — Fig. 8(c);
//! * `CNOT = iSWAP . (H (x) I) . iSWAP . (S (x) Rx(-pi/2))` — Fig. 8(a),
//!   derived by exhaustive search over Clifford locals (see the
//!   `derive_decompositions` example) and verified by unitary equality;
//! * `SWAP` via three `sqrt(iSWAP)`s — Fig. 8(b): `SWAP` is locally
//!   equivalent to `exp(-i pi/4 (XX+YY+ZZ))`, and each `sqrt(iSWAP)`
//!   contributes `exp(-i pi/8 (XX+YY))` up to a local basis change
//!   (`Rx(pi/2)` pairs map `YY -> ZZ`, `Ry(pi/2)` pairs map `XX -> ZZ`);
//! * `SWAP = iSWAP . (S (x) S) . CZ` — one `iSWAP` plus one `CZ`;
//! * `SWAP` via three `CNOT`s — Fig. 8(d) after lowering each to `CZ`;
//! * `CNOT` via two `sqrt(iSWAP)`s — using
//!   `K . (X (x) I) . K . (X (x) I) = exp(-i pi/4 XX)` and local Cliffords.
//!
//! The **hybrid** strategy (paper §V-B5) lowers `CNOT` via `CZ` and `SWAP`
//! via `sqrt(iSWAP)`, which the paper shows is cheaper than committing to a
//! single native gate.

use crate::circuit::{Circuit, Operands};
use crate::gate::{Gate, NativeGateSet};
use std::f64::consts::FRAC_PI_2;

/// Which native two-qubit gate(s) the lowering may target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Lower everything to `CZ` (plus single-qubit gates).
    CzOnly,
    /// Lower everything to `iSWAP`.
    ISwapOnly,
    /// Lower everything to `sqrt(iSWAP)`.
    SqrtISwapOnly,
    /// Paper §V-B5: `CNOT` via `CZ`, `SWAP` via `sqrt(iSWAP)`.
    Hybrid,
}

impl Strategy {
    /// The native gate set this strategy targets.
    pub fn native_set(self) -> NativeGateSet {
        match self {
            Strategy::CzOnly => NativeGateSet { cz: true, iswap: false, sqrt_iswap: false },
            Strategy::ISwapOnly => NativeGateSet { cz: false, iswap: true, sqrt_iswap: false },
            Strategy::SqrtISwapOnly => {
                NativeGateSet { cz: false, iswap: false, sqrt_iswap: true }
            }
            Strategy::Hybrid => NativeGateSet::transmon(),
        }
    }
}

/// Lowers every non-native gate of `circuit` to the strategy's native set.
///
/// The output is unitary-equivalent to the input up to global phase (tested
/// exhaustively); run [`optimize::peephole`](crate::optimize::peephole)
/// afterwards to cancel the single-qubit debris between adjacent lowered
/// gates.
pub fn decompose(circuit: &Circuit, strategy: Strategy) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    let native = strategy.native_set();
    for inst in circuit.instructions() {
        match inst.operands {
            Operands::One(q) => {
                out.push1(inst.gate, q).expect("validated by source circuit");
            }
            Operands::Two(a, b) => {
                if native.contains(inst.gate) {
                    out.push2(inst.gate, a, b).expect("validated by source circuit");
                } else {
                    lower(&mut out, inst.gate, a, b, strategy);
                }
            }
        }
    }
    out
}

fn lower(out: &mut Circuit, gate: Gate, a: usize, b: usize, strategy: Strategy) {
    match (gate, strategy) {
        (Gate::Cnot, Strategy::CzOnly | Strategy::Hybrid) => cnot_via_cz(out, a, b),
        (Gate::Cnot, Strategy::ISwapOnly) => cnot_via_iswap(out, a, b),
        (Gate::Cnot, Strategy::SqrtISwapOnly) => cnot_via_sqrt_iswap(out, a, b),
        (Gate::Swap, Strategy::CzOnly) => swap_via_cz(out, a, b),
        (Gate::Swap, Strategy::ISwapOnly) => swap_via_iswap(out, a, b),
        (Gate::Swap, Strategy::SqrtISwapOnly | Strategy::Hybrid) => {
            swap_via_sqrt_iswap(out, a, b)
        }
        (Gate::Cz, Strategy::ISwapOnly) => cz_via_iswap(out, a, b),
        (Gate::Cz, Strategy::SqrtISwapOnly) => cz_via_sqrt_iswap(out, a, b),
        (Gate::ISwap, Strategy::CzOnly) => {
            // iSWAP = SWAP . CZ . (Sdg (x) Sdg); SWAP via CZ.
            out.push1(Gate::Sdg, a).expect("valid");
            out.push1(Gate::Sdg, b).expect("valid");
            out.push2(Gate::Cz, a, b).expect("valid");
            swap_via_cz(out, a, b);
        }
        (Gate::ISwap, Strategy::SqrtISwapOnly) => {
            out.push2(Gate::SqrtISwap, a, b).expect("valid");
            out.push2(Gate::SqrtISwap, a, b).expect("valid");
        }
        (Gate::SqrtISwap, Strategy::CzOnly | Strategy::ISwapOnly) => {
            sqrt_iswap_via_cnots(out, a, b, strategy)
        }
        (g, s) => unreachable!("gate {g} requires no lowering under {s:?}"),
    }
}

/// `CNOT(c, t) = H(t) . CZ . H(t)` — Fig. 8(c).
fn cnot_via_cz(out: &mut Circuit, c: usize, t: usize) {
    out.push1(Gate::H, t).expect("valid");
    out.push2(Gate::Cz, c, t).expect("valid");
    out.push1(Gate::H, t).expect("valid");
}

/// `CNOT(c, t) = iSWAP . (H (x) I) . iSWAP . (S (x) Rx(-pi/2))` up to
/// global phase — Fig. 8(a). Execution order: locals first.
fn cnot_via_iswap(out: &mut Circuit, c: usize, t: usize) {
    out.push1(Gate::S, c).expect("valid");
    out.push1(Gate::Rx(-FRAC_PI_2), t).expect("valid");
    out.push2(Gate::ISwap, c, t).expect("valid");
    out.push1(Gate::H, c).expect("valid");
    out.push2(Gate::ISwap, c, t).expect("valid");
}

/// `CZ = (I (x) H) . CNOT . (I (x) H)`, with the CNOT lowered to iSWAPs.
fn cz_via_iswap(out: &mut Circuit, a: usize, b: usize) {
    out.push1(Gate::H, b).expect("valid");
    cnot_via_iswap(out, a, b);
    out.push1(Gate::H, b).expect("valid");
}

/// `CZ` via two `sqrt(iSWAP)`s (through the CNOT construction).
fn cz_via_sqrt_iswap(out: &mut Circuit, a: usize, b: usize) {
    out.push1(Gate::H, b).expect("valid");
    cnot_via_sqrt_iswap(out, a, b);
    out.push1(Gate::H, b).expect("valid");
}

/// `SWAP` as three `CNOT`s, each lowered via `CZ` — Fig. 8(d).
fn swap_via_cz(out: &mut Circuit, a: usize, b: usize) {
    cnot_via_cz(out, a, b);
    cnot_via_cz(out, b, a);
    cnot_via_cz(out, a, b);
}

/// `SWAP = iSWAP . (S (x) S) . CZ`, with the CZ lowered to iSWAPs
/// (three `iSWAP`s in total).
fn swap_via_iswap(out: &mut Circuit, a: usize, b: usize) {
    cz_via_iswap(out, a, b);
    out.push1(Gate::S, a).expect("valid");
    out.push1(Gate::S, b).expect("valid");
    out.push2(Gate::ISwap, a, b).expect("valid");
}

/// `SWAP` via three `sqrt(iSWAP)`s — Fig. 8(b).
///
/// `SWAP ~ exp(-i pi/4 (XX+YY+ZZ))` and `K = exp(-i pi/8 (XX+YY))`; the
/// three commuting factors are `K`, `P K P^dag` with `P = Rx(pi/2)^(x2)`
/// (maps `YY -> ZZ`), and `Q K Q^dag` with `Q = Ry(pi/2)^(x2)`
/// (maps `XX -> ZZ`).
fn swap_via_sqrt_iswap(out: &mut Circuit, a: usize, b: usize) {
    out.push2(Gate::SqrtISwap, a, b).expect("valid");
    out.push1(Gate::Rx(-FRAC_PI_2), a).expect("valid");
    out.push1(Gate::Rx(-FRAC_PI_2), b).expect("valid");
    out.push2(Gate::SqrtISwap, a, b).expect("valid");
    out.push1(Gate::Rx(FRAC_PI_2), a).expect("valid");
    out.push1(Gate::Rx(FRAC_PI_2), b).expect("valid");
    out.push1(Gate::Ry(-FRAC_PI_2), a).expect("valid");
    out.push1(Gate::Ry(-FRAC_PI_2), b).expect("valid");
    out.push2(Gate::SqrtISwap, a, b).expect("valid");
    out.push1(Gate::Ry(FRAC_PI_2), a).expect("valid");
    out.push1(Gate::Ry(FRAC_PI_2), b).expect("valid");
}

/// `exp(-i theta/2 Z(x)Z)` as `CNOT . Rz_t(theta) . CNOT` with the CNOTs
/// lowered per `strategy` (conjugation by CNOT maps `Z_t` to `Z_c Z_t`).
fn zz_interaction(out: &mut Circuit, c: usize, t: usize, theta: f64, strategy: Strategy) {
    let cnot = |out: &mut Circuit| match strategy {
        Strategy::ISwapOnly => cnot_via_iswap(out, c, t),
        _ => cnot_via_cz(out, c, t),
    };
    cnot(out);
    out.push1(Gate::Rz(theta), t).expect("valid");
    cnot(out);
}

/// `sqrt(iSWAP) = exp(-i pi/8 (XX + YY))` over CNOT-equivalent natives:
/// the commuting `XX` and `YY` factors are each a basis-changed
/// `ZZ`-interaction (`H` pair for `X`, `Rx(pi/2)` pair for `Y`).
fn sqrt_iswap_via_cnots(out: &mut Circuit, a: usize, b: usize, strategy: Strategy) {
    // exp(-i pi/8 XX) = (H(x)H) exp(-i pi/8 ZZ) (H(x)H).
    out.push1(Gate::H, a).expect("valid");
    out.push1(Gate::H, b).expect("valid");
    zz_interaction(out, a, b, std::f64::consts::FRAC_PI_4, strategy);
    out.push1(Gate::H, a).expect("valid");
    out.push1(Gate::H, b).expect("valid");
    // exp(-i pi/8 YY) = (Rx(pi/2)(x)Rx(pi/2)) exp(-i pi/8 ZZ) (Rx(-pi/2)(x)Rx(-pi/2)).
    out.push1(Gate::Rx(-FRAC_PI_2), a).expect("valid");
    out.push1(Gate::Rx(-FRAC_PI_2), b).expect("valid");
    zz_interaction(out, a, b, std::f64::consts::FRAC_PI_4, strategy);
    out.push1(Gate::Rx(FRAC_PI_2), a).expect("valid");
    out.push1(Gate::Rx(FRAC_PI_2), b).expect("valid");
}

/// `CNOT(c, t)` via two `sqrt(iSWAP)`s.
///
/// `K . (X (x) I) . K . (X (x) I) = exp(-i pi/4 XX)` (conjugating by
/// `X (x) I` flips `YY`), and `exp(-i pi/4 XX)` is `CNOT` up to the local
/// Cliffords applied below.
fn cnot_via_sqrt_iswap(out: &mut Circuit, c: usize, t: usize) {
    // Execution order; matrix product reads right-to-left:
    // CNOT ~ (Rz(pi/2) (x) Rx(pi/2)) . (HZ (x) I) . exp(-i pi/4 XX) . (ZH (x) I)
    out.push1(Gate::H, c).expect("valid");
    out.push1(Gate::Z, c).expect("valid");
    // exp(-i pi/4 XX) = K . (X (x) I) . K . (X (x) I): X first in time.
    out.push1(Gate::X, c).expect("valid");
    out.push2(Gate::SqrtISwap, c, t).expect("valid");
    out.push1(Gate::X, c).expect("valid");
    out.push2(Gate::SqrtISwap, c, t).expect("valid");
    out.push1(Gate::Z, c).expect("valid");
    out.push1(Gate::H, c).expect("valid");
    out.push1(Gate::Rz(FRAC_PI_2), c).expect("valid");
    out.push1(Gate::Rx(FRAC_PI_2), t).expect("valid");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::{circuit_unitary, matrices_equal_up_to_phase};

    const TOL: f64 = 1e-9;

    fn assert_equivalent(program: &Circuit, strategy: Strategy) {
        let lowered = decompose(program, strategy);
        let native = strategy.native_set();
        for inst in lowered.instructions() {
            assert!(
                native.contains(inst.gate),
                "{strategy:?} output contains non-native {}",
                inst.gate
            );
        }
        assert!(
            matrices_equal_up_to_phase(
                &circuit_unitary(program),
                &circuit_unitary(&lowered),
                TOL
            ),
            "{strategy:?} lowering changed the unitary"
        );
    }

    fn single(gate: Gate, a: usize, b: usize) -> Circuit {
        let mut c = Circuit::new(2);
        c.push2(gate, a, b).expect("valid");
        c
    }

    #[test]
    fn cnot_via_cz_structure() {
        let lowered = decompose(&single(Gate::Cnot, 0, 1), Strategy::CzOnly);
        assert_eq!(lowered.gate_counts()["cz"], 1);
        assert_eq!(lowered.gate_counts()["h"], 2);
    }

    #[test]
    fn cnot_equivalence_all_strategies() {
        for (a, b) in [(0, 1), (1, 0)] {
            let c = single(Gate::Cnot, a, b);
            for s in [
                Strategy::CzOnly,
                Strategy::ISwapOnly,
                Strategy::SqrtISwapOnly,
                Strategy::Hybrid,
            ] {
                assert_equivalent(&c, s);
            }
        }
    }

    #[test]
    fn cnot_via_iswap_uses_two_iswaps() {
        let lowered = decompose(&single(Gate::Cnot, 0, 1), Strategy::ISwapOnly);
        assert_eq!(lowered.gate_counts()["iswap"], 2, "Fig. 8(a): two iSWAPs");
    }

    #[test]
    fn cnot_via_sqrt_iswap_uses_two() {
        let lowered = decompose(&single(Gate::Cnot, 0, 1), Strategy::SqrtISwapOnly);
        assert_eq!(lowered.gate_counts()["sqiswap"], 2);
    }

    #[test]
    fn swap_equivalence_all_strategies() {
        for (a, b) in [(0, 1), (1, 0)] {
            let c = single(Gate::Swap, a, b);
            for s in [
                Strategy::CzOnly,
                Strategy::ISwapOnly,
                Strategy::SqrtISwapOnly,
                Strategy::Hybrid,
            ] {
                assert_equivalent(&c, s);
            }
        }
    }

    #[test]
    fn swap_via_sqrt_iswap_uses_three() {
        let lowered = decompose(&single(Gate::Swap, 0, 1), Strategy::SqrtISwapOnly);
        assert_eq!(lowered.gate_counts()["sqiswap"], 3, "Fig. 8(b): three sqrt(iSWAP)s");
    }

    #[test]
    fn swap_via_iswap_uses_three() {
        let lowered = decompose(&single(Gate::Swap, 0, 1), Strategy::ISwapOnly);
        assert_eq!(lowered.gate_counts()["iswap"], 3);
    }

    #[test]
    fn swap_via_cz_uses_three() {
        let lowered = decompose(&single(Gate::Swap, 0, 1), Strategy::CzOnly);
        assert_eq!(lowered.gate_counts()["cz"], 3, "Fig. 8(d): three CZs");
    }

    #[test]
    fn hybrid_prefers_cz_for_cnot_and_sqrt_iswap_for_swap() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Swap, 0, 1).expect("valid");
        let lowered = decompose(&c, Strategy::Hybrid);
        let counts = lowered.gate_counts();
        assert_eq!(counts["cz"], 1);
        assert_eq!(counts["sqiswap"], 3);
        assert!(!counts.contains_key("cnot"));
        assert!(!counts.contains_key("swap"));
        assert_equivalent(&c, Strategy::Hybrid);
    }

    #[test]
    fn cz_lowered_only_when_not_native() {
        let c = single(Gate::Cz, 0, 1);
        let kept = decompose(&c, Strategy::CzOnly);
        assert_eq!(kept.len(), 1);
        for s in [Strategy::ISwapOnly, Strategy::SqrtISwapOnly] {
            assert_equivalent(&c, s);
        }
    }

    #[test]
    fn iswap_lowered_under_cz_only() {
        let c = single(Gate::ISwap, 0, 1);
        assert_equivalent(&c, Strategy::CzOnly);
        let c = single(Gate::ISwap, 1, 0);
        assert_equivalent(&c, Strategy::SqrtISwapOnly);
    }

    #[test]
    fn sqrt_iswap_lowered_over_clifford_natives() {
        for (a, b) in [(0, 1), (1, 0)] {
            let c = single(Gate::SqrtISwap, a, b);
            assert_equivalent(&c, Strategy::CzOnly);
            assert_equivalent(&c, Strategy::ISwapOnly);
        }
    }

    #[test]
    fn single_qubit_gates_pass_through() {
        let mut c = Circuit::new(1);
        c.push1(Gate::T, 0).expect("valid");
        c.push1(Gate::Rx(0.3), 0).expect("valid");
        let lowered = decompose(&c, Strategy::Hybrid);
        assert_eq!(lowered.len(), 2);
    }

    #[test]
    fn composite_program_equivalence() {
        // A little entangler + swap network on 3 qubits.
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Swap, 1, 2).expect("valid");
        c.push1(Gate::T, 2).expect("valid");
        c.push2(Gate::Cnot, 2, 0).expect("valid");
        for s in
            [Strategy::CzOnly, Strategy::ISwapOnly, Strategy::SqrtISwapOnly, Strategy::Hybrid]
        {
            let lowered = decompose(&c, s);
            assert!(
                matrices_equal_up_to_phase(
                    &circuit_unitary(&c),
                    &circuit_unitary(&lowered),
                    TOL
                ),
                "{s:?}"
            );
        }
    }

    #[test]
    fn peephole_after_decompose_preserves_semantics() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid"); // self-inverse pair
        let lowered = decompose(&c, Strategy::CzOnly);
        let cleaned = crate::optimize::peephole(&lowered);
        // H H between the two CZs cancels; then CZ CZ cancels; then the
        // outer H H cancel: everything disappears.
        assert!(cleaned.is_empty(), "got {} gates", cleaned.len());
    }
}

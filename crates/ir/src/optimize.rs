//! Peephole circuit cleanup.
//!
//! Decomposition introduces sequences of single-qubit gates that frequently
//! cancel (e.g. the `H H` produced by back-to-back lowered `CNOT`s). This
//! pass performs the standard local simplifications:
//!
//! * adjacent inverse pairs on identical operands are removed
//!   ([`Gate::is_inverse_of`]);
//! * adjacent rotations about the same axis on the same qubit are merged;
//! * identity gates and zero-angle rotations are dropped.
//!
//! "Adjacent" is with respect to the dependency DAG: two gates cancel when
//! no intervening instruction touches any of their qubits.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// Rotation angles within this tolerance of zero (mod 4 pi) are dropped.
const ANGLE_TOL: f64 = 1e-12;

/// Applies peephole simplification until a fixed point is reached and
/// returns the cleaned circuit.
///
/// The fixed-point loop double-buffers between two instruction vectors
/// and reuses one per-qubit tracker, so a whole peephole run costs three
/// allocations regardless of how many passes it takes.
pub fn peephole(circuit: &Circuit) -> Circuit {
    let mut current: Vec<Instruction> = circuit.instructions().to_vec();
    let mut next: Vec<Instruction> = Vec::with_capacity(current.len());
    let mut last_on_qubit: Vec<usize> = vec![NO_INST; circuit.n_qubits()];
    loop {
        let changed = one_pass(&current, &mut next, &mut last_on_qubit);
        std::mem::swap(&mut current, &mut next);
        if !changed {
            break;
        }
    }
    let mut out = Circuit::new(circuit.n_qubits());
    for inst in current {
        out.push(inst).expect("instructions validated by the source circuit");
    }
    out
}

fn is_trivial(gate: Gate) -> bool {
    match gate {
        Gate::Id => true,
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) => {
            // Rotations are 4 pi periodic (2 pi flips global phase only).
            let reduced = t.rem_euclid(4.0 * std::f64::consts::PI);
            reduced.abs() < ANGLE_TOL
                || (reduced - 4.0 * std::f64::consts::PI).abs() < ANGLE_TOL
        }
        _ => false,
    }
}

fn merge(a: Gate, b: Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::Rx(x), Gate::Rx(y)) => Some(Gate::Rx(x + y)),
        (Gate::Ry(x), Gate::Ry(y)) => Some(Gate::Ry(x + y)),
        (Gate::Rz(x), Gate::Rz(y)) => Some(Gate::Rz(x + y)),
        _ => None,
    }
}

/// Sentinel for "no live instruction on this qubit" in the per-qubit
/// tracker.
const NO_INST: usize = usize::MAX;

fn one_pass(
    insts: &[Instruction],
    out: &mut Vec<Instruction>,
    last_on_qubit: &mut [usize],
) -> bool {
    out.clear();
    // For each qubit, the index *in `out`* of the last instruction touching
    // it (NO_INST if none is still present).
    last_on_qubit.fill(NO_INST);
    let mut changed = false;

    for &inst in insts {
        if is_trivial(inst.gate) {
            changed = true;
            continue;
        }
        // The candidate partner must be the last instruction on *all* of
        // this instruction's qubits, with identical operands.
        let candidate = last_on_qubit[inst.operands.first()];
        let partner = (candidate != NO_INST
            && inst.operands.into_iter().all(|q| last_on_qubit[q] == candidate)
            && out[candidate].operands == inst.operands)
            .then_some(candidate);

        if let Some(idx) = partner {
            let prev = out[idx];
            if prev.gate.is_inverse_of(inst.gate) {
                // Remove the pair: mark the slot dead and clear trackers.
                out[idx] = Instruction { gate: Gate::Id, operands: prev.operands };
                for q in inst.operands {
                    last_on_qubit[q] = NO_INST;
                }
                changed = true;
                continue;
            }
            if let Some(merged) = merge(prev.gate, inst.gate) {
                if is_trivial(merged) {
                    out[idx] = Instruction { gate: Gate::Id, operands: prev.operands };
                    for q in inst.operands {
                        last_on_qubit[q] = NO_INST;
                    }
                } else {
                    out[idx] = Instruction { gate: merged, operands: prev.operands };
                }
                changed = true;
                continue;
            }
        }

        let idx = out.len();
        out.push(inst);
        for q in inst.operands {
            last_on_qubit[q] = idx;
        }
    }

    out.retain(|i| !is_trivial(i.gate));
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::{circuit_unitary, matrices_equal_up_to_phase};

    #[test]
    fn cancels_adjacent_hadamards() {
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn keeps_separated_hadamards() {
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::T, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        assert_eq!(peephole(&c).len(), 3);
    }

    #[test]
    fn blocking_gate_on_other_qubit_does_not_matter() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::T, 1).expect("valid"); // disjoint qubit
        c.push1(Gate::H, 0).expect("valid");
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate, Gate::T);
    }

    #[test]
    fn merges_rotations() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Rz(0.3), 0).expect("valid");
        c.push1(Gate::Rz(0.4), 0).expect("valid");
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        match opt.instructions()[0].gate {
            Gate::Rz(t) => assert!((t - 0.7).abs() < 1e-12),
            g => panic!("expected rz, got {g}"),
        }
    }

    #[test]
    fn merged_rotation_cancelling_is_removed() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Rx(0.5), 0).expect("valid");
        c.push1(Gate::Rx(-0.5), 0).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn cancels_adjacent_cz_pairs() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cz, 0, 1).expect("valid");
        c.push2(Gate::Cz, 0, 1).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn cz_with_intervening_gate_survives() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cz, 0, 1).expect("valid");
        c.push1(Gate::X, 0).expect("valid");
        c.push2(Gate::Cz, 0, 1).expect("valid");
        assert_eq!(peephole(&c).len(), 3);
    }

    #[test]
    fn drops_identity_and_zero_rotations() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Id, 0).expect("valid");
        c.push1(Gate::Rz(0.0), 0).expect("valid");
        c.push1(Gate::X, 0).expect("valid");
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate, Gate::X);
    }

    #[test]
    fn cascading_cancellation_via_fixed_point() {
        // T Tdg collapses, exposing H H which then collapses.
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::T, 0).expect("valid");
        c.push1(Gate::Tdg, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn preserves_unitary_semantics() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::Rz(0.9), 1).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push1(Gate::Rz(-0.2), 1).expect("valid");
        c.push1(Gate::Rz(0.2), 1).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        let opt = peephole(&c);
        assert!(opt.len() < c.len());
        assert!(matrices_equal_up_to_phase(&circuit_unitary(&c), &circuit_unitary(&opt), 1e-9));
    }

    #[test]
    fn asymmetric_cnot_operands_must_match_exactly() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Cnot, 1, 0).expect("valid"); // reversed: no cancel
        assert_eq!(peephole(&c).len(), 2);
    }
}

//! Peephole circuit cleanup.
//!
//! Decomposition introduces sequences of single-qubit gates that frequently
//! cancel (e.g. the `H H` produced by back-to-back lowered `CNOT`s). This
//! pass performs the standard local simplifications:
//!
//! * adjacent inverse pairs on identical operands are removed
//!   ([`Gate::is_inverse_of`]);
//! * adjacent rotations about the same axis on the same qubit are merged;
//! * identity gates and zero-angle rotations are dropped.
//!
//! "Adjacent" is with respect to the dependency DAG: two gates cancel when
//! no intervening instruction touches any of their qubits.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// Rotation angles within this tolerance of zero (mod 4 pi) are dropped.
const ANGLE_TOL: f64 = 1e-12;

/// Applies peephole simplification until a fixed point is reached and
/// returns the cleaned circuit.
pub fn peephole(circuit: &Circuit) -> Circuit {
    let mut current: Vec<Instruction> = circuit.instructions().to_vec();
    loop {
        let (next, changed) = one_pass(circuit.n_qubits(), &current);
        current = next;
        if !changed {
            break;
        }
    }
    let mut out = Circuit::new(circuit.n_qubits());
    for inst in current {
        out.push(inst).expect("instructions validated by the source circuit");
    }
    out
}

fn is_trivial(gate: Gate) -> bool {
    match gate {
        Gate::Id => true,
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) => {
            // Rotations are 4 pi periodic (2 pi flips global phase only).
            let reduced = t.rem_euclid(4.0 * std::f64::consts::PI);
            reduced.abs() < ANGLE_TOL
                || (reduced - 4.0 * std::f64::consts::PI).abs() < ANGLE_TOL
        }
        _ => false,
    }
}

fn merge(a: Gate, b: Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::Rx(x), Gate::Rx(y)) => Some(Gate::Rx(x + y)),
        (Gate::Ry(x), Gate::Ry(y)) => Some(Gate::Ry(x + y)),
        (Gate::Rz(x), Gate::Rz(y)) => Some(Gate::Rz(x + y)),
        _ => None,
    }
}

fn one_pass(n_qubits: usize, insts: &[Instruction]) -> (Vec<Instruction>, bool) {
    let mut out: Vec<Instruction> = Vec::with_capacity(insts.len());
    // For each qubit, the index *in `out`* of the last instruction touching
    // it (if still present).
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; n_qubits];
    let mut changed = false;

    for &inst in insts {
        if is_trivial(inst.gate) {
            changed = true;
            continue;
        }
        // The candidate partner must be the last instruction on *all* of
        // this instruction's qubits, with identical operands.
        let qubits = inst.qubits();
        let candidate = last_on_qubit[qubits[0]];
        let partner = candidate.filter(|&idx| {
            qubits.iter().all(|&q| last_on_qubit[q] == Some(idx))
                && out[idx].operands == inst.operands
        });

        if let Some(idx) = partner {
            let prev = out[idx];
            if prev.gate.is_inverse_of(inst.gate) {
                // Remove the pair: mark the slot dead and clear trackers.
                out[idx] = Instruction { gate: Gate::Id, operands: prev.operands };
                for q in qubits {
                    last_on_qubit[q] = None;
                }
                changed = true;
                continue;
            }
            if let Some(merged) = merge(prev.gate, inst.gate) {
                if is_trivial(merged) {
                    out[idx] = Instruction { gate: Gate::Id, operands: prev.operands };
                    for q in qubits {
                        last_on_qubit[q] = None;
                    }
                } else {
                    out[idx] = Instruction { gate: merged, operands: prev.operands };
                }
                changed = true;
                continue;
            }
        }

        let idx = out.len();
        out.push(inst);
        for q in inst.qubits() {
            last_on_qubit[q] = Some(idx);
        }
    }

    let cleaned: Vec<Instruction> = out.into_iter().filter(|i| !is_trivial(i.gate)).collect();
    (cleaned, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::{circuit_unitary, matrices_equal_up_to_phase};

    #[test]
    fn cancels_adjacent_hadamards() {
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn keeps_separated_hadamards() {
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::T, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        assert_eq!(peephole(&c).len(), 3);
    }

    #[test]
    fn blocking_gate_on_other_qubit_does_not_matter() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::T, 1).expect("valid"); // disjoint qubit
        c.push1(Gate::H, 0).expect("valid");
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate, Gate::T);
    }

    #[test]
    fn merges_rotations() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Rz(0.3), 0).expect("valid");
        c.push1(Gate::Rz(0.4), 0).expect("valid");
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        match opt.instructions()[0].gate {
            Gate::Rz(t) => assert!((t - 0.7).abs() < 1e-12),
            g => panic!("expected rz, got {g}"),
        }
    }

    #[test]
    fn merged_rotation_cancelling_is_removed() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Rx(0.5), 0).expect("valid");
        c.push1(Gate::Rx(-0.5), 0).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn cancels_adjacent_cz_pairs() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cz, 0, 1).expect("valid");
        c.push2(Gate::Cz, 0, 1).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn cz_with_intervening_gate_survives() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cz, 0, 1).expect("valid");
        c.push1(Gate::X, 0).expect("valid");
        c.push2(Gate::Cz, 0, 1).expect("valid");
        assert_eq!(peephole(&c).len(), 3);
    }

    #[test]
    fn drops_identity_and_zero_rotations() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Id, 0).expect("valid");
        c.push1(Gate::Rz(0.0), 0).expect("valid");
        c.push1(Gate::X, 0).expect("valid");
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate, Gate::X);
    }

    #[test]
    fn cascading_cancellation_via_fixed_point() {
        // T Tdg collapses, exposing H H which then collapses.
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::T, 0).expect("valid");
        c.push1(Gate::Tdg, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn preserves_unitary_semantics() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::Rz(0.9), 1).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push1(Gate::Rz(-0.2), 1).expect("valid");
        c.push1(Gate::Rz(0.2), 1).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        let opt = peephole(&c);
        assert!(opt.len() < c.len());
        assert!(matrices_equal_up_to_phase(&circuit_unitary(&c), &circuit_unitary(&opt), 1e-9));
    }

    #[test]
    fn asymmetric_cnot_operands_must_match_exactly() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Cnot, 1, 0).expect("valid"); // reversed: no cancel
        assert_eq!(peephole(&c).len(), 2);
    }
}

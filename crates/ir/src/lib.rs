//! Circuit intermediate representation for FastSC.
//!
//! This crate replaces the Qiskit dependency of the original FastSC: a
//! [`Circuit`] of [`Gate`]s over program qubits, dependency analysis and
//! ASAP slicing ([`layering`]), lowering of program gates to the native
//! tunable-transmon set ([`decompose`], paper Fig. 8 including the hybrid
//! strategy of §V-B5), a peephole cleanup pass ([`optimize`]), and dense
//! unitaries for equivalence checking ([`unitary`]).
//!
//! # Example
//!
//! ```
//! use fastsc_ir::{Circuit, Gate, decompose::{decompose, Strategy}};
//!
//! let mut c = Circuit::new(2);
//! c.push1(Gate::H, 0)?;
//! c.push2(Gate::Cnot, 0, 1)?;
//! let lowered = decompose(&c, Strategy::Hybrid);
//! // CNOT lowered via CZ: no CNOT left, exactly one CZ.
//! assert_eq!(lowered.gate_counts().get("cnot"), None);
//! assert_eq!(lowered.gate_counts()["cz"], 1);
//! # Ok::<(), fastsc_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
pub mod decompose;
mod gate;
pub mod hash;
pub mod layering;
pub mod math;
pub mod optimize;
pub mod qasm;
pub mod unitary;

pub use circuit::{Circuit, Instruction, IrError, Operands};
pub use gate::{Gate, NativeGateSet};

//! Quantum circuits: ordered gate lists over `n` program qubits.

use crate::gate::Gate;
use crate::hash::StableHasher;
use std::error::Error;
use std::fmt;

/// Errors raised when building circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrError {
    /// A qubit operand was at least the circuit's qubit count.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: usize,
        /// The circuit's qubit count.
        n_qubits: usize,
    },
    /// A two-qubit gate was applied to one qubit twice.
    DuplicateOperand {
        /// The repeated qubit.
        qubit: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IrError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for circuit with {n_qubits} qubits")
            }
            IrError::DuplicateOperand { qubit } => {
                write!(f, "two-qubit gate applied twice to qubit {qubit}")
            }
        }
    }
}

impl Error for IrError {}

/// The qubit operands of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operands {
    /// A single-qubit operand.
    One(usize),
    /// Two distinct qubit operands (order significant for `CNOT`).
    Two(usize, usize),
}

impl Operands {
    /// The operands as a slice-like small vector.
    pub fn as_vec(self) -> Vec<usize> {
        match self {
            Operands::One(q) => vec![q],
            Operands::Two(a, b) => vec![a, b],
        }
    }

    /// The first operand (the only one for single-qubit gates; the
    /// control side for `CNOT`).
    pub fn first(self) -> usize {
        match self {
            Operands::One(q) | Operands::Two(q, _) => q,
        }
    }

    /// Number of operands (1 or 2).
    #[allow(clippy::len_without_is_empty)] // an instruction always has operands
    pub fn len(self) -> usize {
        match self {
            Operands::One(_) => 1,
            Operands::Two(..) => 2,
        }
    }

    /// Whether `q` is among the operands.
    pub fn contains(self, q: usize) -> bool {
        match self {
            Operands::One(a) => a == q,
            Operands::Two(a, b) => a == q || b == q,
        }
    }

    /// Whether any operand is shared with `other`.
    pub fn overlaps(self, other: Operands) -> bool {
        match self {
            Operands::One(a) => other.contains(a),
            Operands::Two(a, b) => other.contains(a) || other.contains(b),
        }
    }
}

/// Allocation-free iterator over an instruction's operands — the hot-path
/// replacement for [`Operands::as_vec`], which allocates a `Vec` per call
/// and dominated compile-time profiles in the scheduling engine's inner
/// loops.
#[derive(Debug, Clone)]
pub struct OperandIter {
    operands: Operands,
    next: usize,
}

impl Iterator for OperandIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let q = match (self.operands, self.next) {
            (Operands::One(q), 0) => q,
            (Operands::Two(a, _), 0) => a,
            (Operands::Two(_, b), 1) => b,
            _ => return None,
        };
        self.next += 1;
        Some(q)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.operands.len().saturating_sub(self.next);
        (left, Some(left))
    }
}

impl ExactSizeIterator for OperandIter {}

impl IntoIterator for Operands {
    type Item = usize;
    type IntoIter = OperandIter;

    fn into_iter(self) -> OperandIter {
        OperandIter { operands: self, next: 0 }
    }
}

/// A gate applied to specific qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// The gate.
    pub gate: Gate,
    /// Its operands (arity checked at construction).
    pub operands: Operands,
}

impl Instruction {
    /// The qubits this instruction touches.
    pub fn qubits(&self) -> Vec<usize> {
        self.operands.as_vec()
    }

    /// For two-qubit instructions, the operand pair `(a, b)`.
    pub fn qubit_pair(&self) -> Option<(usize, usize)> {
        match self.operands {
            Operands::Two(a, b) => Some((a, b)),
            Operands::One(_) => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.operands {
            Operands::One(q) => write!(f, "{} q{q}", self.gate),
            Operands::Two(a, b) => write!(f, "{} q{a}, q{b}", self.gate),
        }
    }
}

/// An ordered list of instructions over `n_qubits` program qubits.
///
/// # Example
///
/// ```
/// use fastsc_ir::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push1(Gate::H, 0)?;
/// c.push2(Gate::Cnot, 0, 1)?;
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// # Ok::<(), fastsc_ir::IrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit { n_qubits, instructions: Vec::new() }
    }

    /// The number of program qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Appends a single-qubit gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the gate is two-qubit or the operand is out of
    /// range.
    pub fn push1(&mut self, gate: Gate, q: usize) -> Result<&mut Self, IrError> {
        assert!(!gate.is_two_qubit(), "push1 with two-qubit gate {gate}");
        self.check_qubit(q)?;
        self.instructions.push(Instruction { gate, operands: Operands::One(q) });
        Ok(self)
    }

    /// Appends a two-qubit gate; for `CNOT`, `a` is the control.
    ///
    /// # Errors
    ///
    /// Returns an error if either operand is out of range or if `a == b`.
    pub fn push2(&mut self, gate: Gate, a: usize, b: usize) -> Result<&mut Self, IrError> {
        assert!(gate.is_two_qubit(), "push2 with single-qubit gate {gate}");
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(IrError::DuplicateOperand { qubit: a });
        }
        self.instructions.push(Instruction { gate, operands: Operands::Two(a, b) });
        Ok(self)
    }

    /// Appends an already-validated instruction from another circuit with
    /// the same (or larger) qubit count.
    ///
    /// # Errors
    ///
    /// Returns an error if operands are out of range.
    pub fn push(&mut self, instruction: Instruction) -> Result<&mut Self, IrError> {
        for q in instruction.operands {
            self.check_qubit(q)?;
        }
        if let Some((a, b)) = instruction.qubit_pair() {
            if a == b {
                return Err(IrError::DuplicateOperand { qubit: a });
            }
        }
        self.instructions.push(instruction);
        Ok(self)
    }

    /// Appends every instruction of `other`.
    ///
    /// # Errors
    ///
    /// Returns an error if `other` uses qubits outside this circuit's range.
    pub fn extend(&mut self, other: &Circuit) -> Result<&mut Self, IrError> {
        for &inst in other.instructions() {
            self.push(inst)?;
        }
        Ok(self)
    }

    /// Number of two-qubit instructions.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.gate.is_two_qubit()).count()
    }

    /// Number of single-qubit instructions.
    pub fn single_qubit_count(&self) -> usize {
        self.len() - self.two_qubit_count()
    }

    /// Gate histogram keyed by mnemonic.
    pub fn gate_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// A stable 64-bit structural hash of the circuit.
    ///
    /// Two circuits hash equal exactly when they have the same qubit
    /// count and the same instruction sequence (same gates, same
    /// parameters bit-for-bit, same operands in the same order) — the
    /// notion of identity [`PartialEq`] implements, but condensed to a
    /// key a result cache can store. The hash is computed with a pinned
    /// algorithm ([`StableHasher`], FNV-1a/64 over a fixed encoding), so
    /// it is reproducible across processes, platforms, and Rust releases,
    /// unlike [`std::hash::Hasher`] output.
    ///
    /// Gate *reorderings* and qubit *relabelings* change the hash (the
    /// encoding is order-sensitive and operand-sensitive); the property
    /// suite asserts both for random circuits.
    pub fn structural_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.n_qubits);
        h.write_usize(self.instructions.len());
        for inst in &self.instructions {
            let (tag, params) = inst.gate.stable_code();
            h.write_u8(tag);
            h.write_u64(params);
            match inst.operands {
                Operands::One(q) => {
                    h.write_u8(1);
                    h.write_usize(q);
                }
                Operands::Two(a, b) => {
                    h.write_u8(2);
                    h.write_usize(a);
                    h.write_usize(b);
                }
            }
        }
        h.finish()
    }

    /// Logical depth: the number of layers in an ASAP schedule where
    /// instructions sharing a qubit cannot share a layer.
    pub fn depth(&self) -> usize {
        let mut busy_until = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for inst in &self.instructions {
            let start = inst.operands.into_iter().map(|q| busy_until[q]).max().unwrap_or(0);
            for q in inst.operands {
                busy_until[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    fn check_qubit(&self, q: usize) -> Result<(), IrError> {
        if q >= self.n_qubits {
            Err(IrError::QubitOutOfRange { qubit: q, n_qubits: self.n_qubits })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.n_qubits)?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::H, 1).expect("valid");
        c.push2(Gate::Cnot, 0, 2).expect("valid");
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.single_qubit_count(), 2);
        assert_eq!(c.gate_counts()["h"], 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut c = Circuit::new(2);
        assert_eq!(
            c.push1(Gate::X, 2),
            Err(IrError::QubitOutOfRange { qubit: 2, n_qubits: 2 })
        );
        assert_eq!(
            c.push2(Gate::Cz, 0, 5),
            Err(IrError::QubitOutOfRange { qubit: 5, n_qubits: 2 })
        );
    }

    #[test]
    fn rejects_equal_operands() {
        let mut c = Circuit::new(2);
        assert_eq!(c.push2(Gate::Cz, 1, 1), Err(IrError::DuplicateOperand { qubit: 1 }));
    }

    #[test]
    #[should_panic(expected = "push1 with two-qubit gate")]
    fn push1_rejects_two_qubit_gate() {
        let mut c = Circuit::new(2);
        let _ = c.push1(Gate::Cnot, 0);
    }

    #[test]
    fn depth_serial_vs_parallel() {
        // Parallel single-qubit gates: depth 1.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push1(Gate::H, q).expect("valid");
        }
        assert_eq!(c.depth(), 1);

        // Chain on one qubit: depth = number of gates.
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.push1(Gate::X, 0).expect("valid");
        }
        assert_eq!(c.depth(), 5);

        // Two CNOTs sharing a qubit: depth 2.
        let mut c = Circuit::new(3);
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Cnot, 1, 2).expect("valid");
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push1(Gate::H, 0).expect("valid");
        let mut b = Circuit::new(2);
        b.push2(Gate::Cz, 0, 1).expect("valid");
        a.extend(&b).expect("same width");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn extend_rejects_wider_circuit() {
        let mut narrow = Circuit::new(1);
        let mut wide = Circuit::new(3);
        wide.push2(Gate::Cz, 0, 2).expect("valid");
        assert!(narrow.extend(&wide).is_err());
    }

    #[test]
    fn operands_overlap() {
        let a = Operands::Two(0, 1);
        assert!(a.overlaps(Operands::One(1)));
        assert!(a.overlaps(Operands::Two(1, 2)));
        assert!(!a.overlaps(Operands::Two(2, 3)));
        assert!(Operands::One(5).overlaps(Operands::One(5)));
    }

    #[test]
    fn structural_hash_matches_equality() {
        let build = || {
            let mut c = Circuit::new(3);
            c.push1(Gate::H, 0).expect("valid");
            c.push1(Gate::Rz(0.25), 1).expect("valid");
            c.push2(Gate::Cnot, 0, 2).expect("valid");
            c
        };
        assert_eq!(build().structural_hash(), build().structural_hash());
    }

    #[test]
    fn structural_hash_is_pinned() {
        // The hash feeds a persistent cache key: its exact value is part
        // of the contract. If this test fails, the encoding changed and
        // every on-disk cache key would silently rot.
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cz, 0, 1).expect("valid");
        assert_eq!(c.structural_hash(), 0x1217_f165_2626_5d18);
    }

    #[test]
    fn structural_hash_sees_order_operands_params_and_width() {
        let mut base = Circuit::new(3);
        base.push1(Gate::H, 0).expect("valid");
        base.push2(Gate::Cz, 0, 1).expect("valid");

        // Reordered instructions.
        let mut reordered = Circuit::new(3);
        reordered.push2(Gate::Cz, 0, 1).expect("valid");
        reordered.push1(Gate::H, 0).expect("valid");
        assert_ne!(base.structural_hash(), reordered.structural_hash());

        // Relabeled qubits (asymmetric even for the symmetric CZ: the
        // hash is structural, not semantic).
        let mut relabeled = Circuit::new(3);
        relabeled.push1(Gate::H, 2).expect("valid");
        relabeled.push2(Gate::Cz, 2, 1).expect("valid");
        assert_ne!(base.structural_hash(), relabeled.structural_hash());

        // Operand order of a two-qubit gate.
        let mut swapped = Circuit::new(3);
        swapped.push1(Gate::H, 0).expect("valid");
        swapped.push2(Gate::Cz, 1, 0).expect("valid");
        assert_ne!(base.structural_hash(), swapped.structural_hash());

        // Same instructions, different declared width.
        let mut wider = Circuit::new(4);
        wider.push1(Gate::H, 0).expect("valid");
        wider.push2(Gate::Cz, 0, 1).expect("valid");
        assert_ne!(base.structural_hash(), wider.structural_hash());

        // Rotation parameters are hashed bit-exactly.
        let mut ra = Circuit::new(1);
        ra.push1(Gate::Rx(0.1), 0).expect("valid");
        let mut rb = Circuit::new(1);
        rb.push1(Gate::Rx(0.2), 0).expect("valid");
        assert_ne!(ra.structural_hash(), rb.structural_hash());
    }

    #[test]
    fn empty_circuits_hash_by_width() {
        assert_ne!(Circuit::new(1).structural_hash(), Circuit::new(2).structural_hash());
        assert_eq!(Circuit::new(5).structural_hash(), Circuit::new(5).structural_hash());
    }

    #[test]
    fn display_lists_instructions() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cnot q0, q1"));
    }
}

//! Quantum circuits: ordered gate lists over `n` program qubits.

use crate::gate::Gate;
use std::error::Error;
use std::fmt;

/// Errors raised when building circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrError {
    /// A qubit operand was at least the circuit's qubit count.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: usize,
        /// The circuit's qubit count.
        n_qubits: usize,
    },
    /// A two-qubit gate was applied to one qubit twice.
    DuplicateOperand {
        /// The repeated qubit.
        qubit: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IrError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for circuit with {n_qubits} qubits")
            }
            IrError::DuplicateOperand { qubit } => {
                write!(f, "two-qubit gate applied twice to qubit {qubit}")
            }
        }
    }
}

impl Error for IrError {}

/// The qubit operands of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operands {
    /// A single-qubit operand.
    One(usize),
    /// Two distinct qubit operands (order significant for `CNOT`).
    Two(usize, usize),
}

impl Operands {
    /// The operands as a slice-like small vector.
    pub fn as_vec(self) -> Vec<usize> {
        match self {
            Operands::One(q) => vec![q],
            Operands::Two(a, b) => vec![a, b],
        }
    }

    /// Whether `q` is among the operands.
    pub fn contains(self, q: usize) -> bool {
        match self {
            Operands::One(a) => a == q,
            Operands::Two(a, b) => a == q || b == q,
        }
    }

    /// Whether any operand is shared with `other`.
    pub fn overlaps(self, other: Operands) -> bool {
        match self {
            Operands::One(a) => other.contains(a),
            Operands::Two(a, b) => other.contains(a) || other.contains(b),
        }
    }
}

/// A gate applied to specific qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// The gate.
    pub gate: Gate,
    /// Its operands (arity checked at construction).
    pub operands: Operands,
}

impl Instruction {
    /// The qubits this instruction touches.
    pub fn qubits(&self) -> Vec<usize> {
        self.operands.as_vec()
    }

    /// For two-qubit instructions, the operand pair `(a, b)`.
    pub fn qubit_pair(&self) -> Option<(usize, usize)> {
        match self.operands {
            Operands::Two(a, b) => Some((a, b)),
            Operands::One(_) => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.operands {
            Operands::One(q) => write!(f, "{} q{q}", self.gate),
            Operands::Two(a, b) => write!(f, "{} q{a}, q{b}", self.gate),
        }
    }
}

/// An ordered list of instructions over `n_qubits` program qubits.
///
/// # Example
///
/// ```
/// use fastsc_ir::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push1(Gate::H, 0)?;
/// c.push2(Gate::Cnot, 0, 1)?;
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// # Ok::<(), fastsc_ir::IrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit { n_qubits, instructions: Vec::new() }
    }

    /// The number of program qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Appends a single-qubit gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the gate is two-qubit or the operand is out of
    /// range.
    pub fn push1(&mut self, gate: Gate, q: usize) -> Result<&mut Self, IrError> {
        assert!(!gate.is_two_qubit(), "push1 with two-qubit gate {gate}");
        self.check_qubit(q)?;
        self.instructions.push(Instruction { gate, operands: Operands::One(q) });
        Ok(self)
    }

    /// Appends a two-qubit gate; for `CNOT`, `a` is the control.
    ///
    /// # Errors
    ///
    /// Returns an error if either operand is out of range or if `a == b`.
    pub fn push2(&mut self, gate: Gate, a: usize, b: usize) -> Result<&mut Self, IrError> {
        assert!(gate.is_two_qubit(), "push2 with single-qubit gate {gate}");
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(IrError::DuplicateOperand { qubit: a });
        }
        self.instructions.push(Instruction { gate, operands: Operands::Two(a, b) });
        Ok(self)
    }

    /// Appends an already-validated instruction from another circuit with
    /// the same (or larger) qubit count.
    ///
    /// # Errors
    ///
    /// Returns an error if operands are out of range.
    pub fn push(&mut self, instruction: Instruction) -> Result<&mut Self, IrError> {
        for q in instruction.qubits() {
            self.check_qubit(q)?;
        }
        if let Some((a, b)) = instruction.qubit_pair() {
            if a == b {
                return Err(IrError::DuplicateOperand { qubit: a });
            }
        }
        self.instructions.push(instruction);
        Ok(self)
    }

    /// Appends every instruction of `other`.
    ///
    /// # Errors
    ///
    /// Returns an error if `other` uses qubits outside this circuit's range.
    pub fn extend(&mut self, other: &Circuit) -> Result<&mut Self, IrError> {
        for &inst in other.instructions() {
            self.push(inst)?;
        }
        Ok(self)
    }

    /// Number of two-qubit instructions.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.gate.is_two_qubit()).count()
    }

    /// Number of single-qubit instructions.
    pub fn single_qubit_count(&self) -> usize {
        self.len() - self.two_qubit_count()
    }

    /// Gate histogram keyed by mnemonic.
    pub fn gate_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Logical depth: the number of layers in an ASAP schedule where
    /// instructions sharing a qubit cannot share a layer.
    pub fn depth(&self) -> usize {
        let mut busy_until = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for inst in &self.instructions {
            let start = inst.qubits().into_iter().map(|q| busy_until[q]).max().unwrap_or(0);
            for q in inst.qubits() {
                busy_until[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    fn check_qubit(&self, q: usize) -> Result<(), IrError> {
        if q >= self.n_qubits {
            Err(IrError::QubitOutOfRange { qubit: q, n_qubits: self.n_qubits })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.n_qubits)?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::H, 1).expect("valid");
        c.push2(Gate::Cnot, 0, 2).expect("valid");
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.single_qubit_count(), 2);
        assert_eq!(c.gate_counts()["h"], 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut c = Circuit::new(2);
        assert_eq!(
            c.push1(Gate::X, 2),
            Err(IrError::QubitOutOfRange { qubit: 2, n_qubits: 2 })
        );
        assert_eq!(
            c.push2(Gate::Cz, 0, 5),
            Err(IrError::QubitOutOfRange { qubit: 5, n_qubits: 2 })
        );
    }

    #[test]
    fn rejects_equal_operands() {
        let mut c = Circuit::new(2);
        assert_eq!(c.push2(Gate::Cz, 1, 1), Err(IrError::DuplicateOperand { qubit: 1 }));
    }

    #[test]
    #[should_panic(expected = "push1 with two-qubit gate")]
    fn push1_rejects_two_qubit_gate() {
        let mut c = Circuit::new(2);
        let _ = c.push1(Gate::Cnot, 0);
    }

    #[test]
    fn depth_serial_vs_parallel() {
        // Parallel single-qubit gates: depth 1.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push1(Gate::H, q).expect("valid");
        }
        assert_eq!(c.depth(), 1);

        // Chain on one qubit: depth = number of gates.
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.push1(Gate::X, 0).expect("valid");
        }
        assert_eq!(c.depth(), 5);

        // Two CNOTs sharing a qubit: depth 2.
        let mut c = Circuit::new(3);
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Cnot, 1, 2).expect("valid");
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push1(Gate::H, 0).expect("valid");
        let mut b = Circuit::new(2);
        b.push2(Gate::Cz, 0, 1).expect("valid");
        a.extend(&b).expect("same width");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn extend_rejects_wider_circuit() {
        let mut narrow = Circuit::new(1);
        let mut wide = Circuit::new(3);
        wide.push2(Gate::Cz, 0, 2).expect("valid");
        assert!(narrow.extend(&wide).is_err());
    }

    #[test]
    fn operands_overlap() {
        let a = Operands::Two(0, 1);
        assert!(a.overlaps(Operands::One(1)));
        assert!(a.overlaps(Operands::Two(1, 2)));
        assert!(!a.overlaps(Operands::Two(2, 3)));
        assert!(Operands::One(5).overlaps(Operands::One(5)));
    }

    #[test]
    fn display_lists_instructions() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cnot q0, q1"));
    }
}

//! Dependency analysis, ASAP circuit slicing, and gate criticality.
//!
//! The frequency-aware compiler slices the decomposed program into layers
//! (time steps) and, inside its queueing scheduler, prioritizes gates by
//! *criticality* — their position along the program critical path (paper
//! §V-B6). Both are standard longest-path computations over the
//! per-qubit dependency DAG.

use crate::circuit::Circuit;

/// The dependency DAG of a circuit: instruction `j` depends on `i` when
/// `i < j`, they share a qubit, and no instruction between them touches
/// that qubit.
///
/// An instruction has at most two operands, so it has at most two direct
/// predecessors (the previous instruction on each operand qubit) and at
/// most two direct successors. The DAG exploits that bound with a
/// struct-of-arrays layout — fixed two-slot rows plus a length byte per
/// instruction — instead of one heap `Vec` per instruction per direction,
/// which dominated the DAG-construction profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    preds: Vec<[usize; 2]>,
    pred_len: Vec<u8>,
    succs: Vec<[usize; 2]>,
    succ_len: Vec<u8>,
}

impl Dag {
    /// Builds the dependency DAG of `circuit`.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds = vec![[0usize; 2]; n];
        let mut pred_len = vec![0u8; n];
        let mut succs = vec![[0usize; 2]; n];
        let mut succ_len = vec![0u8; n];
        const NONE: usize = usize::MAX;
        let mut last_on_qubit: Vec<usize> = vec![NONE; circuit.n_qubits()];
        for (i, inst) in circuit.instructions().iter().enumerate() {
            for q in inst.operands {
                let p = last_on_qubit[q];
                if p != NONE {
                    let pl = pred_len[i] as usize;
                    // Both operands may depend on the same instruction
                    // (e.g. back-to-back CZs on one pair): record it once.
                    if !(pl == 1 && preds[i][0] == p) {
                        preds[i][pl] = p;
                        pred_len[i] += 1;
                        let sl = succ_len[p] as usize;
                        succs[p][sl] = i;
                        succ_len[p] += 1;
                    }
                }
                last_on_qubit[q] = i;
            }
        }
        Dag { preds, pred_len, succs, succ_len }
    }

    /// Direct predecessors of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i][..self.pred_len[i] as usize]
    }

    /// Direct successors of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i][..self.succ_len[i] as usize]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the DAG has no instructions.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// Slices `circuit` into ASAP layers: each instruction is placed in the
/// earliest layer after all of its dependencies. Returns instruction
/// indices per layer.
///
/// This reproduces the maximal-parallelism list schedule a conventional
/// (crosstalk-unaware) compiler such as Qiskit would produce — the starting
/// point of both Baseline N and ColorDynamic.
pub fn asap_layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let dag = Dag::build(circuit);
    let mut layer_of = vec![0usize; circuit.len()];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for i in 0..circuit.len() {
        let layer = dag.preds(i).iter().map(|&p| layer_of[p] + 1).max().unwrap_or(0);
        layer_of[i] = layer;
        if layers.len() <= layer {
            layers.resize_with(layer + 1, Vec::new);
        }
        layers[layer].push(i);
    }
    layers
}

/// Criticality of each instruction: the number of instructions (inclusive)
/// on the longest dependency chain starting at it. Gates with higher
/// criticality lie on the program critical path and are scheduled first by
/// the noise-aware queueing scheduler.
pub fn criticality(circuit: &Circuit) -> Vec<usize> {
    let mut crit = vec![1usize; circuit.len()];
    criticality_into(&Dag::build(circuit), &mut crit);
    crit
}

/// [`criticality`] over an already-built DAG, written into caller-owned
/// scratch — lets the scheduling engine share one `Dag::build` between
/// dependency tracking and criticality instead of building the DAG twice
/// per compile.
///
/// # Panics
///
/// Panics if `crit.len() != dag.len()`.
pub fn criticality_into(dag: &Dag, crit: &mut [usize]) {
    assert_eq!(crit.len(), dag.len(), "criticality scratch must cover every instruction");
    crit.fill(1);
    // Instructions are already in topological order (program order).
    for i in (0..dag.len()).rev() {
        for &s in dag.succs(i) {
            crit[i] = crit[i].max(1 + crit[s]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        // q0: H --.--------
        //         |
        // q1: ----X---.----
        //             |
        // q2: --------X--H-
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::Cnot, 1, 2).expect("valid");
        c.push1(Gate::H, 2).expect("valid");
        c
    }

    #[test]
    fn dag_edges_follow_qubit_order() {
        let dag = Dag::build(&sample());
        assert_eq!(dag.preds(0), &[] as &[usize]);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
        assert_eq!(dag.preds(3), &[2]);
        assert_eq!(dag.succs(0), &[1]);
        assert_eq!(dag.len(), 4);
    }

    #[test]
    fn dag_deduplicates_double_dependency() {
        // Two CZs on the same pair: the second depends on the first once.
        let mut c = Circuit::new(2);
        c.push2(Gate::Cz, 0, 1).expect("valid");
        c.push2(Gate::Cz, 0, 1).expect("valid");
        let dag = Dag::build(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn asap_layers_chain() {
        let layers = asap_layers(&sample());
        assert_eq!(layers, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn asap_layers_parallel_gates_share_layer() {
        let mut c = Circuit::new(4);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::H, 1).expect("valid");
        c.push2(Gate::Cz, 0, 1).expect("valid");
        c.push2(Gate::Cz, 2, 3).expect("valid");
        let layers = asap_layers(&c);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1, 3]); // CZ(2,3) has no deps
        assert_eq!(layers[1], vec![2]);
    }

    #[test]
    fn asap_layer_count_equals_depth() {
        let c = sample();
        assert_eq!(asap_layers(&c).len(), c.depth());
    }

    #[test]
    fn criticality_decreases_along_chain() {
        let crit = criticality(&sample());
        assert_eq!(crit, vec![4, 3, 2, 1]);
    }

    #[test]
    fn criticality_of_independent_gate_is_one() {
        let mut c = Circuit::new(3);
        c.push2(Gate::Cz, 0, 1).expect("valid");
        c.push1(Gate::H, 2).expect("valid");
        let crit = criticality(&c);
        assert_eq!(crit[1], 1);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2);
        assert!(asap_layers(&c).is_empty());
        assert!(criticality(&c).is_empty());
        assert!(Dag::build(&c).is_empty());
    }
}

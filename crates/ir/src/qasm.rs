//! OpenQASM 2.0 interchange (subset).
//!
//! The original FastSC consumed Qiskit circuits; this module provides the
//! equivalent interoperability for a Rust toolchain: [`to_qasm`] emits a
//! self-contained OpenQASM 2.0 program for any [`Circuit`], and
//! [`from_qasm`] parses the subset this workspace emits (one quantum
//! register, the gate set of [`Gate`], no classical control).
//!
//! QASM is also the **wire format** of the network serving layer
//! (`fastsc_server`): programs submitted over a socket arrive as QASM
//! source and are parsed on the submission path. Parse failures there
//! must become structured error frames, so every error path here is a
//! typed [`QasmError`] variant carrying the offending 1-based line,
//! column, and token — never an ad-hoc string.

use crate::circuit::{Circuit, IrError, Operands};
use crate::gate::Gate;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`from_qasm`].
///
/// Every variant that points at source text carries the 1-based `line`
/// and `column` of the offending token (and the token itself where one
/// exists), so error surfaces — CLI diagnostics, wire protocol error
/// frames — can report the exact location without re-parsing. The
/// uniform accessors [`line`](Self::line), [`column`](Self::column),
/// [`token`](Self::token), and [`code`](Self::code) exist for exactly
/// that serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QasmError {
    /// A statement is missing its trailing semicolon. The column points
    /// just past the statement text, where the `;` belongs.
    MissingSemicolon {
        /// 1-based line number.
        line: usize,
        /// 1-based column where the semicolon was expected.
        column: usize,
    },
    /// A `qreg` declaration that does not have the form `qreg q[N]`.
    BadRegister {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the declaration.
        column: usize,
        /// The malformed declaration text.
        token: String,
    },
    /// A second `qreg` declaration; the subset allows exactly one.
    DuplicateRegister {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the second declaration.
        column: usize,
    },
    /// A statement head that is not a supported gate (or not a gate at
    /// all).
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the head.
        column: usize,
        /// The unrecognized head, e.g. `ccx`.
        token: String,
    },
    /// An operand that does not have the form `q[N]`.
    BadOperand {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the operand.
        column: usize,
        /// The malformed operand text.
        token: String,
    },
    /// A gate parameter that is not a finite decimal angle.
    BadAngle {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the parameter.
        column: usize,
        /// The malformed parameter text, e.g. `rx(nope`.
        token: String,
    },
    /// A gate applied to the wrong number of operands.
    WrongArity {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the gate head.
        column: usize,
        /// The gate name.
        gate: String,
        /// Operands the gate requires.
        expected: usize,
        /// Operands the statement supplied.
        got: usize,
    },
    /// An operand index at or past the declared register size.
    QubitOutOfRange {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the offending operand.
        column: usize,
        /// The out-of-range qubit index.
        qubit: usize,
        /// The declared register size.
        register: usize,
    },
    /// A two-qubit gate applied to the same qubit twice.
    DuplicateOperand {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the repeated operand.
        column: usize,
        /// The repeated qubit index.
        qubit: usize,
    },
    /// The program never declared a quantum register (or applied a gate
    /// before declaring it).
    MissingRegister,
}

impl QasmError {
    /// The 1-based source line, when the error points at source text.
    pub fn line(&self) -> Option<usize> {
        match *self {
            QasmError::MissingSemicolon { line, .. }
            | QasmError::BadRegister { line, .. }
            | QasmError::DuplicateRegister { line, .. }
            | QasmError::UnsupportedGate { line, .. }
            | QasmError::BadOperand { line, .. }
            | QasmError::BadAngle { line, .. }
            | QasmError::WrongArity { line, .. }
            | QasmError::QubitOutOfRange { line, .. }
            | QasmError::DuplicateOperand { line, .. } => Some(line),
            QasmError::MissingRegister => None,
        }
    }

    /// The 1-based source column, when the error points at source text.
    pub fn column(&self) -> Option<usize> {
        match *self {
            QasmError::MissingSemicolon { column, .. }
            | QasmError::BadRegister { column, .. }
            | QasmError::DuplicateRegister { column, .. }
            | QasmError::UnsupportedGate { column, .. }
            | QasmError::BadOperand { column, .. }
            | QasmError::BadAngle { column, .. }
            | QasmError::WrongArity { column, .. }
            | QasmError::QubitOutOfRange { column, .. }
            | QasmError::DuplicateOperand { column, .. } => Some(column),
            QasmError::MissingRegister => None,
        }
    }

    /// The offending token, for the variants that carry one.
    pub fn token(&self) -> Option<&str> {
        match self {
            QasmError::BadRegister { token, .. }
            | QasmError::UnsupportedGate { token, .. }
            | QasmError::BadOperand { token, .. }
            | QasmError::BadAngle { token, .. } => Some(token),
            QasmError::WrongArity { gate, .. } => Some(gate),
            _ => None,
        }
    }

    /// A stable machine-readable discriminant (the wire protocol's
    /// `detail` field).
    pub fn code(&self) -> &'static str {
        match self {
            QasmError::MissingSemicolon { .. } => "missing_semicolon",
            QasmError::BadRegister { .. } => "bad_register",
            QasmError::DuplicateRegister { .. } => "duplicate_register",
            QasmError::UnsupportedGate { .. } => "unsupported_gate",
            QasmError::BadOperand { .. } => "bad_operand",
            QasmError::BadAngle { .. } => "bad_angle",
            QasmError::WrongArity { .. } => "wrong_arity",
            QasmError::QubitOutOfRange { .. } => "qubit_out_of_range",
            QasmError::DuplicateOperand { .. } => "duplicate_operand",
            QasmError::MissingRegister => "missing_register",
        }
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let (Some(line), Some(column)) = (self.line(), self.column()) {
            write!(f, "QASM syntax error on line {line}, column {column}: ")?;
        }
        match self {
            QasmError::MissingSemicolon { .. } => {
                write!(f, "missing trailing semicolon")
            }
            QasmError::BadRegister { token, .. } => {
                write!(f, "bad qreg declaration '{token}'")
            }
            QasmError::DuplicateRegister { .. } => {
                write!(f, "duplicate qreg declaration (the subset allows exactly one)")
            }
            QasmError::UnsupportedGate { token, .. } => {
                write!(f, "unsupported gate '{token}'")
            }
            QasmError::BadOperand { token, .. } => {
                write!(f, "bad operand '{token}' (expected q[N])")
            }
            QasmError::BadAngle { token, .. } => {
                write!(f, "bad angle in '{token}'")
            }
            QasmError::WrongArity { gate, expected, got, .. } => {
                write!(f, "gate '{gate}' expects {expected} operands, got {got}")
            }
            QasmError::QubitOutOfRange { qubit, register, .. } => {
                write!(f, "qubit q[{qubit}] out of range for qreg q[{register}]")
            }
            QasmError::DuplicateOperand { qubit, .. } => {
                write!(f, "two-qubit gate applied twice to q[{qubit}]")
            }
            QasmError::MissingRegister => {
                write!(f, "QASM program declares no qreg")
            }
        }
    }
}

impl Error for QasmError {}

/// Emits the circuit as an OpenQASM 2.0 program over one register `q`.
///
/// Gates outside the OpenQASM standard header (`iswap`, `sqiswap`) are
/// declared as opaque gates so the output round-trips through
/// [`from_qasm`] and remains readable by tools that ignore opaque bodies.
///
/// Rotation angles are printed with Rust's shortest round-trip `f64`
/// formatting, so `from_qasm(to_qasm(c))` reconstructs every angle
/// **bit-exactly** (the structural-hash round-trip property suite pins
/// this).
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str("opaque iswap a, b;\n");
    out.push_str("opaque sqiswap a, b;\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for inst in circuit.instructions() {
        let line = match (inst.gate, inst.operands) {
            (Gate::Id, Operands::One(q)) => format!("id q[{q}];"),
            (Gate::X, Operands::One(q)) => format!("x q[{q}];"),
            (Gate::Y, Operands::One(q)) => format!("y q[{q}];"),
            (Gate::Z, Operands::One(q)) => format!("z q[{q}];"),
            (Gate::H, Operands::One(q)) => format!("h q[{q}];"),
            (Gate::S, Operands::One(q)) => format!("s q[{q}];"),
            (Gate::Sdg, Operands::One(q)) => format!("sdg q[{q}];"),
            (Gate::T, Operands::One(q)) => format!("t q[{q}];"),
            (Gate::Tdg, Operands::One(q)) => format!("tdg q[{q}];"),
            (Gate::Rx(a), Operands::One(q)) => format!("rx({a}) q[{q}];"),
            (Gate::Ry(a), Operands::One(q)) => format!("ry({a}) q[{q}];"),
            (Gate::Rz(a), Operands::One(q)) => format!("rz({a}) q[{q}];"),
            (Gate::Cnot, Operands::Two(c, t)) => format!("cx q[{c}], q[{t}];"),
            (Gate::Cz, Operands::Two(a, b)) => format!("cz q[{a}], q[{b}];"),
            (Gate::Swap, Operands::Two(a, b)) => format!("swap q[{a}], q[{b}];"),
            (Gate::ISwap, Operands::Two(a, b)) => format!("iswap q[{a}], q[{b}];"),
            (Gate::SqrtISwap, Operands::Two(a, b)) => format!("sqiswap q[{a}], q[{b}];"),
            (g, _) => unreachable!("gate {g} with mismatched operands"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The 1-based column of `token` within the source line `raw` it was
/// sliced from. Falls back to column 1 if `token` is not a subslice
/// (never the case for the parser's own slices).
fn column_of(raw: &str, token: &str) -> usize {
    let offset = (token.as_ptr() as usize).wrapping_sub(raw.as_ptr() as usize);
    if offset <= raw.len() {
        offset + 1
    } else {
        1
    }
}

/// Parses the OpenQASM 2.0 subset emitted by [`to_qasm`].
///
/// Accepted statements: the version header, `include`, `opaque`/`barrier`
/// (ignored), one `qreg` declaration, and applications of the gate set.
/// Comments (`//`) and blank lines are skipped.
///
/// # Errors
///
/// Returns [`QasmError`] on unknown statements, malformed operands, or a
/// missing register declaration — each variant locating the offending
/// line, column, and token.
pub fn from_qasm(source: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let code = raw.split("//").next().unwrap_or("");
        let line = code.trim();
        if line.is_empty() {
            continue;
        }
        let Some(stmt) = line.strip_suffix(';') else {
            return Err(QasmError::MissingSemicolon {
                line: line_no,
                column: column_of(raw, line) + line.len(),
            });
        };
        let stmt = stmt.trim();
        if stmt.starts_with("OPENQASM")
            || stmt.starts_with("include")
            || stmt.starts_with("opaque")
            || stmt.starts_with("barrier")
        {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg") {
            if circuit.is_some() {
                return Err(QasmError::DuplicateRegister {
                    line: line_no,
                    column: column_of(raw, stmt),
                });
            }
            let n = parse_register_size(rest).ok_or_else(|| QasmError::BadRegister {
                line: line_no,
                column: column_of(raw, stmt),
                token: stmt.to_string(),
            })?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let circuit = circuit.as_mut().ok_or(QasmError::MissingRegister)?;
        parse_gate_statement(stmt, raw, line_no, circuit)?;
    }
    circuit.ok_or(QasmError::MissingRegister)
}

fn parse_register_size(rest: &str) -> Option<usize> {
    // e.g. ` q[16]`
    let rest = rest.trim();
    let open = rest.find('[')?;
    let close = rest.find(']')?;
    rest[open + 1..close].parse().ok()
}

fn parse_qubit(token: &str) -> Option<usize> {
    // e.g. `q[3]`
    let token = token.trim();
    let open = token.find('[')?;
    let close = token.find(']')?;
    token[open + 1..close].parse().ok()
}

/// Parses and applies one gate statement. `stmt` and every token the
/// errors point at are subslices of `raw`, so columns are exact.
fn parse_gate_statement(
    stmt: &str,
    raw: &str,
    line: usize,
    circuit: &mut Circuit,
) -> Result<(), QasmError> {
    let Some((head, args)) = stmt.split_once(' ') else {
        // No operand list at all, e.g. `measure;` — the head is the
        // whole statement and it is not a gate application we know.
        return Err(QasmError::UnsupportedGate {
            line,
            column: column_of(raw, stmt),
            token: stmt.to_string(),
        });
    };

    let mut operands = Vec::new();
    let mut operand_tokens = Vec::new();
    for token in args.split(',') {
        let qubit = parse_qubit(token).ok_or_else(|| QasmError::BadOperand {
            line,
            column: column_of(raw, token.trim_start()),
            token: token.trim().to_string(),
        })?;
        operands.push(qubit);
        operand_tokens.push(token);
    }

    // Parameterized heads look like `rx(1.5707963267948966)`.
    let (name, angle) = match head.split_once('(') {
        Some((name, rest)) => {
            let angle: f64 = rest
                .strip_suffix(')')
                .and_then(|inner| inner.trim().parse().ok())
                .ok_or_else(|| QasmError::BadAngle {
                    line,
                    column: column_of(raw, rest),
                    token: head.to_string(),
                })?;
            (name.trim(), Some(angle))
        }
        None => (head.trim(), None),
    };

    let gate = match (name, angle) {
        ("id", None) => Gate::Id,
        ("x", None) => Gate::X,
        ("y", None) => Gate::Y,
        ("z", None) => Gate::Z,
        ("h", None) => Gate::H,
        ("s", None) => Gate::S,
        ("sdg", None) => Gate::Sdg,
        ("t", None) => Gate::T,
        ("tdg", None) => Gate::Tdg,
        ("rx", Some(a)) => Gate::Rx(a),
        ("ry", Some(a)) => Gate::Ry(a),
        ("rz", Some(a)) => Gate::Rz(a),
        ("cx", None) => Gate::Cnot,
        ("cz", None) => Gate::Cz,
        ("swap", None) => Gate::Swap,
        ("iswap", None) => Gate::ISwap,
        ("sqiswap", None) => Gate::SqrtISwap,
        _ => {
            return Err(QasmError::UnsupportedGate {
                line,
                column: column_of(raw, head),
                token: head.to_string(),
            })
        }
    };

    let pushed = match (gate.arity(), operands.as_slice()) {
        (1, &[q]) => circuit.push1(gate, q).map(|_| ()),
        (2, &[a, b]) => circuit.push2(gate, a, b).map(|_| ()),
        (arity, ops) => {
            return Err(QasmError::WrongArity {
                line,
                column: column_of(raw, head),
                gate: name.to_string(),
                expected: arity,
                got: ops.len(),
            })
        }
    };
    pushed.map_err(|e| {
        // Locate the operand the circuit rejected so the column points at
        // it, not at the whole statement.
        let column_of_qubit = |qubit: usize| {
            operands
                .iter()
                .position(|&q| q == qubit)
                .map(|i| column_of(raw, operand_tokens[i].trim_start()))
                .unwrap_or_else(|| column_of(raw, stmt))
        };
        match e {
            IrError::QubitOutOfRange { qubit, n_qubits } => QasmError::QubitOutOfRange {
                line,
                column: column_of_qubit(qubit),
                qubit,
                register: n_qubits,
            },
            IrError::DuplicateOperand { qubit } => {
                QasmError::DuplicateOperand { line, column: column_of_qubit(qubit), qubit }
            }
        }
    })
}

/// A corpus of malformed QASM programs, one `(name, source)` pair per
/// known failure mode. Every entry must fail [`from_qasm`] with a typed
/// [`QasmError`] — the parser's own error-path tests iterate it, and the
/// network serving layer's frame-decode tests replay each entry over a
/// live socket to prove malformed submissions produce structured error
/// frames without killing the connection. Shared here so the two suites
/// can never drift apart.
pub fn malformed_corpus() -> &'static [(&'static str, &'static str)] {
    &[
        ("empty", ""),
        ("only_comment", "// nothing here\n"),
        ("no_register", "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"),
        ("gate_before_register", "OPENQASM 2.0;\nh q[0];\n"),
        ("missing_semicolon", "qreg q[1]\n"),
        ("comment_swallows_semicolon", "qreg q[1];\nh q[0] // ;\n"),
        ("bad_register_empty_size", "qreg q[];\n"),
        ("bad_register_no_brackets", "qreg q;\n"),
        ("bad_register_negative", "qreg q[-3];\n"),
        ("duplicate_register", "qreg q[2];\nqreg r[2];\n"),
        ("unknown_gate", "qreg q[2];\nccx q[0], q[1];\n"),
        ("unknown_statement", "qreg q[2];\nmeasure;\n"),
        ("bad_arity_cx_one_operand", "qreg q[2];\ncx q[0];\n"),
        ("bad_arity_h_two_operands", "qreg q[2];\nh q[0], q[1];\n"),
        ("out_of_range_operand", "qreg q[1];\nh q[4];\n"),
        ("duplicate_operand", "qreg q[2];\ncx q[1], q[1];\n"),
        ("bad_angle_not_a_number", "qreg q[1];\nrx(nope) q[0];\n"),
        ("bad_angle_unterminated", "qreg q[1];\nrx(1.0 q[0];\n"),
        ("bad_operand_not_indexed", "qreg q[2];\ncx q[0], nope;\n"),
        ("truncated_mid_operand", "qreg q[2];\ncx q[0], q[;\n"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::{circuit_unitary, matrices_equal_up_to_phase};

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::Rz(0.25), 1).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::ISwap, 1, 2).expect("valid");
        c.push2(Gate::SqrtISwap, 0, 2).expect("valid");
        c.push1(Gate::Tdg, 2).expect("valid");
        c
    }

    #[test]
    fn emits_header_and_register() {
        let qasm = to_qasm(&sample());
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("cx q[0], q[1];"));
        assert!(qasm.contains("iswap q[1], q[2];"));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = sample();
        let parsed = from_qasm(&to_qasm(&original)).expect("roundtrip parses");
        assert_eq!(parsed.n_qubits(), original.n_qubits());
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.instructions().iter().zip(parsed.instructions()) {
            assert_eq!(a.operands, b.operands);
            assert_eq!(a.gate.name(), b.gate.name());
        }
    }

    #[test]
    fn roundtrip_preserves_unitary() {
        let original = sample();
        let parsed = from_qasm(&to_qasm(&original)).expect("parses");
        assert!(matrices_equal_up_to_phase(
            &circuit_unitary(&original),
            &circuit_unitary(&parsed),
            1e-12
        ));
    }

    #[test]
    fn parses_comments_and_blanks() {
        let src =
            "OPENQASM 2.0;\n// a comment\n\nqreg q[2];\nh q[0]; // trailing\ncx q[0], q[1];\n";
        let c = from_qasm(src).expect("parses");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn comment_markers_inside_a_statement_strip_the_rest() {
        // `//` strips to end of line even when glued to the semicolon,
        // and a commented-out gate after a real one must not parse.
        let c = from_qasm("qreg q[2];\nrz(1.5) q[0];// x q[1];\n").expect("parses");
        assert_eq!(c.len(), 1);
        assert!(matches!(c.instructions()[0].gate, Gate::Rz(_)));
    }

    #[test]
    fn rejects_gate_before_register() {
        let err = from_qasm("OPENQASM 2.0;\nh q[0];\n").expect_err("no qreg");
        assert_eq!(err, QasmError::MissingRegister);
        assert_eq!(err.to_string(), "QASM program declares no qreg");
        assert_eq!((err.line(), err.column(), err.token()), (None, None, None));
    }

    #[test]
    fn rejects_unknown_gate_with_location() {
        let err = from_qasm("qreg q[2];\nccx q[0], q[1];\n").expect_err("ccx unsupported");
        assert_eq!(err, QasmError::UnsupportedGate { line: 2, column: 1, token: "ccx".into() });
        assert_eq!(
            err.to_string(),
            "QASM syntax error on line 2, column 1: unsupported gate 'ccx'"
        );
        assert_eq!(err.code(), "unsupported_gate");
    }

    #[test]
    fn rejects_missing_semicolon_pointing_past_the_statement() {
        let err = from_qasm("qreg q[1]\n").expect_err("no semicolon");
        assert_eq!(err, QasmError::MissingSemicolon { line: 1, column: 10 });
    }

    #[test]
    fn rejects_out_of_range_operand_with_the_operand_column() {
        let err = from_qasm("qreg q[1];\nh q[4];\n").expect_err("q4 out of range");
        assert_eq!(
            err,
            QasmError::QubitOutOfRange { line: 2, column: 3, qubit: 4, register: 1 }
        );
    }

    #[test]
    fn rejects_wrong_arity_with_counts() {
        let err = from_qasm("qreg q[2];\ncx q[0];\n").expect_err("cx needs 2");
        assert_eq!(
            err,
            QasmError::WrongArity {
                line: 2,
                column: 1,
                gate: "cx".into(),
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_duplicate_operand() {
        let err = from_qasm("qreg q[2];\ncx q[1], q[1];\n").expect_err("repeated operand");
        assert_eq!(err, QasmError::DuplicateOperand { line: 2, column: 4, qubit: 1 });
    }

    #[test]
    fn rejects_duplicate_register() {
        let err = from_qasm("qreg q[2];\nqreg r[3];\n").expect_err("one register only");
        assert_eq!(err, QasmError::DuplicateRegister { line: 2, column: 1 });
    }

    #[test]
    fn rejects_bad_angle_with_the_parameter_token() {
        let err = from_qasm("qreg q[1];\nrx(nope) q[0];\n").expect_err("bad angle");
        assert_eq!(err, QasmError::BadAngle { line: 2, column: 4, token: "rx(nope)".into() });
    }

    #[test]
    fn rejects_bad_operand_with_its_column() {
        let err = from_qasm("qreg q[2];\ncx q[0], nope;\n").expect_err("bad operand");
        assert_eq!(err, QasmError::BadOperand { line: 2, column: 10, token: "nope".into() });
    }

    #[test]
    fn every_corpus_entry_fails_with_a_typed_error() {
        for (name, source) in malformed_corpus() {
            let err = from_qasm(source)
                .map(|_| ())
                .expect_err(&format!("corpus entry '{name}' must fail"));
            // Every error renders and exposes its stable code; location
            // accessors agree with the variant's payload.
            assert!(!err.to_string().is_empty(), "{name}");
            assert!(!err.code().is_empty(), "{name}");
            if let Some(line) = err.line() {
                assert!(line >= 1, "{name}: lines are 1-based");
                assert!(err.column().is_some_and(|c| c >= 1), "{name}: columns are 1-based");
            }
        }
    }

    #[test]
    fn angle_precision_survives_roundtrip_bit_exactly() {
        let angles =
            [std::f64::consts::PI / 7.0, 1.23e-17, -0.0, 2.9999999999999996, f64::MIN_POSITIVE];
        for angle in angles {
            let mut c = Circuit::new(1);
            c.push1(Gate::Rx(angle), 0).expect("valid");
            let parsed = from_qasm(&to_qasm(&c)).expect("parses");
            match parsed.instructions()[0].gate {
                Gate::Rx(a) => assert_eq!(
                    a.to_bits(),
                    angle.to_bits(),
                    "angle {angle:e} must round-trip bit-exactly"
                ),
                ref g => panic!("expected rx, got {g}"),
            }
        }
    }
}

//! OpenQASM 2.0 interchange (subset).
//!
//! The original FastSC consumed Qiskit circuits; this module provides the
//! equivalent interoperability for a Rust toolchain: [`to_qasm`] emits a
//! self-contained OpenQASM 2.0 program for any [`Circuit`], and
//! [`from_qasm`] parses the subset this workspace emits (one quantum
//! register, the gate set of [`Gate`], no classical control).

use crate::circuit::{Circuit, Operands};
use crate::gate::Gate;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`from_qasm`].
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The program never declared a quantum register.
    MissingRegister,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::Syntax { line, message } => {
                write!(f, "QASM syntax error on line {line}: {message}")
            }
            QasmError::MissingRegister => {
                write!(f, "QASM program declares no qreg")
            }
        }
    }
}

impl Error for QasmError {}

/// Emits the circuit as an OpenQASM 2.0 program over one register `q`.
///
/// Gates outside the OpenQASM standard header (`iswap`, `sqiswap`) are
/// declared as opaque gates so the output round-trips through
/// [`from_qasm`] and remains readable by tools that ignore opaque bodies.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str("opaque iswap a, b;\n");
    out.push_str("opaque sqiswap a, b;\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for inst in circuit.instructions() {
        let line = match (inst.gate, inst.operands) {
            (Gate::Id, Operands::One(q)) => format!("id q[{q}];"),
            (Gate::X, Operands::One(q)) => format!("x q[{q}];"),
            (Gate::Y, Operands::One(q)) => format!("y q[{q}];"),
            (Gate::Z, Operands::One(q)) => format!("z q[{q}];"),
            (Gate::H, Operands::One(q)) => format!("h q[{q}];"),
            (Gate::S, Operands::One(q)) => format!("s q[{q}];"),
            (Gate::Sdg, Operands::One(q)) => format!("sdg q[{q}];"),
            (Gate::T, Operands::One(q)) => format!("t q[{q}];"),
            (Gate::Tdg, Operands::One(q)) => format!("tdg q[{q}];"),
            (Gate::Rx(a), Operands::One(q)) => format!("rx({a:.17}) q[{q}];"),
            (Gate::Ry(a), Operands::One(q)) => format!("ry({a:.17}) q[{q}];"),
            (Gate::Rz(a), Operands::One(q)) => format!("rz({a:.17}) q[{q}];"),
            (Gate::Cnot, Operands::Two(c, t)) => format!("cx q[{c}], q[{t}];"),
            (Gate::Cz, Operands::Two(a, b)) => format!("cz q[{a}], q[{b}];"),
            (Gate::Swap, Operands::Two(a, b)) => format!("swap q[{a}], q[{b}];"),
            (Gate::ISwap, Operands::Two(a, b)) => format!("iswap q[{a}], q[{b}];"),
            (Gate::SqrtISwap, Operands::Two(a, b)) => format!("sqiswap q[{a}], q[{b}];"),
            (g, _) => unreachable!("gate {g} with mismatched operands"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses the OpenQASM 2.0 subset emitted by [`to_qasm`].
///
/// Accepted statements: the version header, `include`, `opaque`/`barrier`
/// (ignored), one `qreg` declaration, and applications of the gate set.
/// Comments (`//`) and blank lines are skipped.
///
/// # Errors
///
/// Returns [`QasmError`] on unknown statements, malformed operands, or a
/// missing register declaration.
pub fn from_qasm(source: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let stmt = line.strip_suffix(';').ok_or_else(|| QasmError::Syntax {
            line: line_no,
            message: "missing trailing semicolon".into(),
        })?;
        let stmt = stmt.trim();
        if stmt.starts_with("OPENQASM")
            || stmt.starts_with("include")
            || stmt.starts_with("opaque")
            || stmt.starts_with("barrier")
        {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg") {
            let n = parse_register_size(rest).ok_or_else(|| QasmError::Syntax {
                line: line_no,
                message: format!("bad qreg declaration '{stmt}'"),
            })?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let circuit = circuit.as_mut().ok_or(QasmError::MissingRegister)?;
        parse_gate_statement(stmt, circuit)
            .map_err(|message| QasmError::Syntax { line: line_no, message })?;
    }
    circuit.ok_or(QasmError::MissingRegister)
}

fn parse_register_size(rest: &str) -> Option<usize> {
    // e.g. ` q[16]`
    let rest = rest.trim();
    let open = rest.find('[')?;
    let close = rest.find(']')?;
    rest[open + 1..close].parse().ok()
}

fn parse_qubit(token: &str) -> Option<usize> {
    // e.g. `q[3]`
    let token = token.trim();
    let open = token.find('[')?;
    let close = token.find(']')?;
    token[open + 1..close].parse().ok()
}

fn parse_gate_statement(stmt: &str, circuit: &mut Circuit) -> Result<(), String> {
    let (head, args) =
        stmt.split_once(' ').ok_or_else(|| format!("cannot split gate statement '{stmt}'"))?;
    let operands: Vec<usize> = args
        .split(',')
        .map(parse_qubit)
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| format!("bad operand list '{args}'"))?;

    // Parameterized heads look like `rx(1.5707)`.
    let (name, angle) = match head.split_once('(') {
        Some((name, rest)) => {
            let angle: f64 = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unterminated parameter in '{head}'"))?
                .trim()
                .parse()
                .map_err(|_| format!("bad angle in '{head}'"))?;
            (name.trim(), Some(angle))
        }
        None => (head.trim(), None),
    };

    let gate = match (name, angle) {
        ("id", None) => Gate::Id,
        ("x", None) => Gate::X,
        ("y", None) => Gate::Y,
        ("z", None) => Gate::Z,
        ("h", None) => Gate::H,
        ("s", None) => Gate::S,
        ("sdg", None) => Gate::Sdg,
        ("t", None) => Gate::T,
        ("tdg", None) => Gate::Tdg,
        ("rx", Some(a)) => Gate::Rx(a),
        ("ry", Some(a)) => Gate::Ry(a),
        ("rz", Some(a)) => Gate::Rz(a),
        ("cx", None) => Gate::Cnot,
        ("cz", None) => Gate::Cz,
        ("swap", None) => Gate::Swap,
        ("iswap", None) => Gate::ISwap,
        ("sqiswap", None) => Gate::SqrtISwap,
        _ => return Err(format!("unsupported gate '{head}'")),
    };

    match (gate.arity(), operands.as_slice()) {
        (1, &[q]) => circuit.push1(gate, q).map(|_| ()).map_err(|e| e.to_string()),
        (2, &[a, b]) => circuit.push2(gate, a, b).map(|_| ()).map_err(|e| e.to_string()),
        (arity, ops) => {
            Err(format!("gate '{name}' expects {arity} operands, got {}", ops.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::{circuit_unitary, matrices_equal_up_to_phase};

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).expect("valid");
        c.push1(Gate::Rz(0.25), 1).expect("valid");
        c.push2(Gate::Cnot, 0, 1).expect("valid");
        c.push2(Gate::ISwap, 1, 2).expect("valid");
        c.push2(Gate::SqrtISwap, 0, 2).expect("valid");
        c.push1(Gate::Tdg, 2).expect("valid");
        c
    }

    #[test]
    fn emits_header_and_register() {
        let qasm = to_qasm(&sample());
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("cx q[0], q[1];"));
        assert!(qasm.contains("iswap q[1], q[2];"));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = sample();
        let parsed = from_qasm(&to_qasm(&original)).expect("roundtrip parses");
        assert_eq!(parsed.n_qubits(), original.n_qubits());
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.instructions().iter().zip(parsed.instructions()) {
            assert_eq!(a.operands, b.operands);
            assert_eq!(a.gate.name(), b.gate.name());
        }
    }

    #[test]
    fn roundtrip_preserves_unitary() {
        let original = sample();
        let parsed = from_qasm(&to_qasm(&original)).expect("parses");
        assert!(matrices_equal_up_to_phase(
            &circuit_unitary(&original),
            &circuit_unitary(&parsed),
            1e-12
        ));
    }

    #[test]
    fn parses_comments_and_blanks() {
        let src =
            "OPENQASM 2.0;\n// a comment\n\nqreg q[2];\nh q[0]; // trailing\ncx q[0], q[1];\n";
        let c = from_qasm(src).expect("parses");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rejects_gate_before_register() {
        let err = from_qasm("OPENQASM 2.0;\nh q[0];\n").expect_err("no qreg");
        assert_eq!(err, QasmError::MissingRegister);
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = from_qasm("qreg q[2];\nccx q[0], q[1];\n").expect_err("ccx unsupported");
        assert!(matches!(err, QasmError::Syntax { line: 2, .. }));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = from_qasm("qreg q[1]\n").expect_err("no semicolon");
        assert!(matches!(err, QasmError::Syntax { line: 1, .. }));
    }

    #[test]
    fn rejects_out_of_range_operand() {
        let err = from_qasm("qreg q[1];\nh q[4];\n").expect_err("q4 out of range");
        assert!(matches!(err, QasmError::Syntax { line: 2, .. }));
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = from_qasm("qreg q[2];\ncx q[0];\n").expect_err("cx needs 2");
        assert!(matches!(err, QasmError::Syntax { line: 2, .. }));
    }

    #[test]
    fn angle_precision_survives_roundtrip() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Rx(std::f64::consts::PI / 7.0), 0).expect("valid");
        let parsed = from_qasm(&to_qasm(&c)).expect("parses");
        match parsed.instructions()[0].gate {
            Gate::Rx(a) => {
                assert!((a - std::f64::consts::PI / 7.0).abs() < 1e-15)
            }
            ref g => panic!("expected rx, got {g}"),
        }
    }
}

//! The gate set.
//!
//! Tunable-transmon hardware natively implements arbitrary single-qubit
//! rotations (microwave drive) plus the resonance-based two-qubit gates
//! `iSWAP`, `sqrt(iSWAP)` and `CZ` (paper §II-B). Program-level gates such
//! as `CNOT` and `SWAP` must be decomposed (paper Fig. 8, module
//! [`decompose`](crate::decompose)).
//!
//! Matrix conventions: for two-qubit gates the first operand is the most
//! significant bit of the 4-dimensional basis `|q0 q1> in {00, 01, 10, 11}`.
//! The `iSWAP` matrix follows the paper (`-i` off-diagonal entries).

use crate::math::{self, Mat2, Mat4, C64, I, ONE, ZERO};
use std::fmt;

/// A quantum gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit idle).
    Id,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `diag(1, i)`.
    S,
    /// Inverse phase gate `diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{i pi/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Rotation about X by the given angle (radians).
    Rx(f64),
    /// Rotation about Y by the given angle (radians).
    Ry(f64),
    /// Rotation about Z by the given angle (radians).
    Rz(f64),
    /// Controlled-NOT (first operand is the control).
    Cnot,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP (symmetric).
    Swap,
    /// iSWAP with the paper's `-i` convention (symmetric).
    ISwap,
    /// Square root of [`Gate::ISwap`] (symmetric).
    SqrtISwap,
}

impl Gate {
    /// Number of operands: 1 or 2.
    pub fn arity(self) -> usize {
        if self.is_two_qubit() {
            2
        } else {
            1
        }
    }

    /// Whether this is a two-qubit gate.
    pub fn is_two_qubit(self) -> bool {
        matches!(self, Gate::Cnot | Gate::Cz | Gate::Swap | Gate::ISwap | Gate::SqrtISwap)
    }

    /// Whether swapping the two operands leaves the gate unchanged.
    ///
    /// Only meaningful for two-qubit gates; single-qubit gates return
    /// `false`.
    pub fn is_symmetric(self) -> bool {
        matches!(self, Gate::Cz | Gate::Swap | Gate::ISwap | Gate::SqrtISwap)
    }

    /// The 2x2 unitary, for single-qubit gates.
    pub fn matrix1(self) -> Option<Mat2> {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let m: Mat2 = match self {
            Gate::Id => math::identity2(),
            Gate::X => [[ZERO, ONE], [ONE, ZERO]],
            Gate::Y => [[ZERO, -I], [I, ZERO]],
            Gate::Z => [[ONE, ZERO], [ZERO, -ONE]],
            Gate::H => [
                [C64::real(inv_sqrt2), C64::real(inv_sqrt2)],
                [C64::real(inv_sqrt2), C64::real(-inv_sqrt2)],
            ],
            Gate::S => [[ONE, ZERO], [ZERO, I]],
            Gate::Sdg => [[ONE, ZERO], [ZERO, -I]],
            Gate::T => [[ONE, ZERO], [ZERO, C64::cis(std::f64::consts::FRAC_PI_4)]],
            Gate::Tdg => [[ONE, ZERO], [ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)]],
            Gate::Rx(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [[C64::real(c), C64::new(0.0, -s)], [C64::new(0.0, -s), C64::real(c)]]
            }
            Gate::Ry(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]]
            }
            Gate::Rz(theta) => [[C64::cis(-theta / 2.0), ZERO], [ZERO, C64::cis(theta / 2.0)]],
            _ => return None,
        };
        Some(m)
    }

    /// The 4x4 unitary, for two-qubit gates (first operand = MSB).
    pub fn matrix2(self) -> Option<Mat4> {
        let inv_sqrt2 = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        let mi_sqrt2 = C64::new(0.0, -std::f64::consts::FRAC_1_SQRT_2);
        let m: Mat4 = match self {
            Gate::Cnot => [
                [ONE, ZERO, ZERO, ZERO],
                [ZERO, ONE, ZERO, ZERO],
                [ZERO, ZERO, ZERO, ONE],
                [ZERO, ZERO, ONE, ZERO],
            ],
            Gate::Cz => [
                [ONE, ZERO, ZERO, ZERO],
                [ZERO, ONE, ZERO, ZERO],
                [ZERO, ZERO, ONE, ZERO],
                [ZERO, ZERO, ZERO, -ONE],
            ],
            Gate::Swap => [
                [ONE, ZERO, ZERO, ZERO],
                [ZERO, ZERO, ONE, ZERO],
                [ZERO, ONE, ZERO, ZERO],
                [ZERO, ZERO, ZERO, ONE],
            ],
            Gate::ISwap => [
                [ONE, ZERO, ZERO, ZERO],
                [ZERO, ZERO, -I, ZERO],
                [ZERO, -I, ZERO, ZERO],
                [ZERO, ZERO, ZERO, ONE],
            ],
            Gate::SqrtISwap => [
                [ONE, ZERO, ZERO, ZERO],
                [ZERO, inv_sqrt2, mi_sqrt2, ZERO],
                [ZERO, mi_sqrt2, inv_sqrt2, ZERO],
                [ZERO, ZERO, ZERO, ONE],
            ],
            _ => return None,
        };
        Some(m)
    }

    /// Whether applying `self` then `other` on the same operands is the
    /// identity (used by the peephole optimizer).
    pub fn is_inverse_of(self, other: Gate) -> bool {
        const TOL: f64 = 1e-12;
        match (self, other) {
            (Gate::Rx(a), Gate::Rx(b))
            | (Gate::Ry(a), Gate::Ry(b))
            | (Gate::Rz(a), Gate::Rz(b)) => (a + b).abs() < TOL,
            (Gate::S, Gate::Sdg) | (Gate::Sdg, Gate::S) => true,
            (Gate::T, Gate::Tdg) | (Gate::Tdg, Gate::T) => true,
            (a, b) if a == b => matches!(
                a,
                Gate::Id
                    | Gate::X
                    | Gate::Y
                    | Gate::Z
                    | Gate::H
                    | Gate::Cnot
                    | Gate::Cz
                    | Gate::Swap
            ),
            _ => false,
        }
    }

    /// A stable `(tag, parameter-bits)` encoding for structural hashing.
    ///
    /// Tags are fixed forever (appending new gates gets new tags; existing
    /// tags never change), so a [`Circuit::structural_hash`]
    /// (crate::Circuit::structural_hash) computed today matches one
    /// computed by any future build — the property the compile service's
    /// persistent result cache depends on. Non-parametric gates carry
    /// parameter bits `0`; rotations carry the IEEE-754 bits of their
    /// angle, so `Rx(0.1)` and `Rx(0.2)` encode differently while
    /// `Rx(a)` always encodes identically to itself.
    pub fn stable_code(self) -> (u8, u64) {
        match self {
            Gate::Id => (0, 0),
            Gate::X => (1, 0),
            Gate::Y => (2, 0),
            Gate::Z => (3, 0),
            Gate::H => (4, 0),
            Gate::S => (5, 0),
            Gate::Sdg => (6, 0),
            Gate::T => (7, 0),
            Gate::Tdg => (8, 0),
            Gate::Rx(t) => (9, t.to_bits()),
            Gate::Ry(t) => (10, t.to_bits()),
            Gate::Rz(t) => (11, t.to_bits()),
            Gate::Cnot => (12, 0),
            Gate::Cz => (13, 0),
            Gate::Swap => (14, 0),
            Gate::ISwap => (15, 0),
            Gate::SqrtISwap => (16, 0),
        }
    }

    /// Decodes a [`stable_code`](Self::stable_code) pair back into the
    /// gate — the inverse the persistent artifact store uses to rebuild
    /// circuits from disk. Returns `None` for an unknown tag, or for a
    /// non-parametric tag carrying non-zero parameter bits (both signal a
    /// corrupt or future-format record, which must be dropped rather than
    /// misread). Round-trips exactly: rotations are rebuilt from the same
    /// IEEE-754 bits `stable_code` emitted.
    pub fn from_stable_code(tag: u8, params: u64) -> Option<Gate> {
        let gate = match tag {
            0 => Gate::Id,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::H,
            5 => Gate::S,
            6 => Gate::Sdg,
            7 => Gate::T,
            8 => Gate::Tdg,
            9 => return Some(Gate::Rx(f64::from_bits(params))),
            10 => return Some(Gate::Ry(f64::from_bits(params))),
            11 => return Some(Gate::Rz(f64::from_bits(params))),
            12 => Gate::Cnot,
            13 => Gate::Cz,
            14 => Gate::Swap,
            15 => Gate::ISwap,
            16 => Gate::SqrtISwap,
            _ => return None,
        };
        (params == 0).then_some(gate)
    }

    /// A short lowercase mnemonic (e.g. `"cnot"`, `"rx"`).
    pub fn name(self) -> &'static str {
        match self {
            Gate::Id => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Cnot => "cnot",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::ISwap => "iswap",
            Gate::SqrtISwap => "sqiswap",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) => write!(f, "{}({:.4})", self.name(), t),
            _ => f.write_str(self.name()),
        }
    }
}

/// The native two-qubit gates of a tunable-transmon device.
///
/// All single-qubit rotations are assumed native (microwave drive);
/// membership here determines which two-qubit gates survive decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NativeGateSet {
    /// `CZ` available (|11> <-> |20> resonance).
    pub cz: bool,
    /// `iSWAP` available (|01> <-> |10> resonance).
    pub iswap: bool,
    /// `sqrt(iSWAP)` available (half-period |01> <-> |10> resonance).
    pub sqrt_iswap: bool,
}

impl NativeGateSet {
    /// The full tunable-transmon native set (paper §II-B: CZ, iSWAP and
    /// sqrt(iSWAP) all reachable by frequency resonance).
    pub fn transmon() -> Self {
        NativeGateSet { cz: true, iswap: true, sqrt_iswap: true }
    }

    /// Whether `gate` may appear in compiled output.
    pub fn contains(self, gate: Gate) -> bool {
        match gate {
            Gate::Cz => self.cz,
            Gate::ISwap => self.iswap,
            Gate::SqrtISwap => self.sqrt_iswap,
            Gate::Cnot | Gate::Swap => false,
            _ => true, // single-qubit gates always native
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{is_unitary2, is_unitary4, mat4_approx_eq, matmul4};
    use std::f64::consts::PI;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Rz(0.3).arity(), 1);
        assert_eq!(Gate::Cnot.arity(), 2);
        assert!(Gate::ISwap.is_two_qubit());
        assert!(!Gate::X.is_two_qubit());
    }

    #[test]
    fn all_single_qubit_matrices_unitary() {
        let gates = [
            Gate::Id,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.3),
            Gate::Rz(2.1),
        ];
        for g in gates {
            let m = g.matrix1().expect("single-qubit gate");
            assert!(is_unitary2(&m, 1e-12), "{g} not unitary");
            assert!(g.matrix2().is_none());
        }
    }

    #[test]
    fn all_two_qubit_matrices_unitary() {
        for g in [Gate::Cnot, Gate::Cz, Gate::Swap, Gate::ISwap, Gate::SqrtISwap] {
            let m = g.matrix2().expect("two-qubit gate");
            assert!(is_unitary4(&m, 1e-12), "{g} not unitary");
            assert!(g.matrix1().is_none());
        }
    }

    #[test]
    fn sqrt_iswap_squares_to_iswap() {
        let half = Gate::SqrtISwap.matrix2().expect("two-qubit");
        let full = Gate::ISwap.matrix2().expect("two-qubit");
        assert!(mat4_approx_eq(&matmul4(&half, &half), &full, 1e-12));
    }

    #[test]
    fn iswap_matches_paper_matrix() {
        let m = Gate::ISwap.matrix2().expect("two-qubit");
        assert!(m[1][2].approx_eq(-I, 1e-15));
        assert!(m[2][1].approx_eq(-I, 1e-15));
        assert!(m[0][0].approx_eq(ONE, 1e-15));
        assert!(m[3][3].approx_eq(ONE, 1e-15));
    }

    #[test]
    fn rotation_periodicity() {
        // Rx(2 pi) = -I (spinor sign), so Rx(4 pi) = I.
        let m = Gate::Rx(4.0 * PI).matrix1().expect("1q");
        assert!(m[0][0].approx_eq(ONE, 1e-12));
        let m2 = Gate::Rx(2.0 * PI).matrix1().expect("1q");
        assert!(m2[0][0].approx_eq(-ONE, 1e-12));
    }

    #[test]
    fn inverse_pairs() {
        assert!(Gate::H.is_inverse_of(Gate::H));
        assert!(Gate::S.is_inverse_of(Gate::Sdg));
        assert!(Gate::Rz(0.4).is_inverse_of(Gate::Rz(-0.4)));
        assert!(!Gate::Rz(0.4).is_inverse_of(Gate::Rz(0.4)));
        assert!(Gate::Cz.is_inverse_of(Gate::Cz));
        assert!(!Gate::ISwap.is_inverse_of(Gate::ISwap)); // iSWAP^2 != I
        assert!(!Gate::T.is_inverse_of(Gate::T));
    }

    #[test]
    fn symmetry_flags() {
        assert!(Gate::Cz.is_symmetric());
        assert!(Gate::Swap.is_symmetric());
        assert!(Gate::ISwap.is_symmetric());
        assert!(!Gate::Cnot.is_symmetric());
        assert!(!Gate::H.is_symmetric());
    }

    #[test]
    fn native_set_membership() {
        let native = NativeGateSet::transmon();
        assert!(native.contains(Gate::Cz));
        assert!(native.contains(Gate::Rx(1.0)));
        assert!(!native.contains(Gate::Cnot));
        assert!(!native.contains(Gate::Swap));
        let cz_only = NativeGateSet { cz: true, ..Default::default() };
        assert!(!cz_only.contains(Gate::ISwap));
    }

    #[test]
    fn display_contains_angle() {
        assert_eq!(Gate::Rz(0.5).to_string(), "rz(0.5000)");
        assert_eq!(Gate::Cnot.to_string(), "cnot");
    }

    #[test]
    fn stable_code_round_trips_every_gate() {
        let gates = [
            Gate::Id,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.25),
            Gate::Ry(-1.5),
            Gate::Rz(PI),
            Gate::Cnot,
            Gate::Cz,
            Gate::Swap,
            Gate::ISwap,
            Gate::SqrtISwap,
        ];
        for gate in gates {
            let (tag, params) = gate.stable_code();
            let back = Gate::from_stable_code(tag, params).expect("known tag decodes");
            let (tag2, params2) = back.stable_code();
            assert_eq!((tag, params), (tag2, params2), "{gate} must round-trip bit-exactly");
        }
        // Rotation bits round-trip exactly, including negative zero.
        let neg_zero = Gate::Rx(-0.0);
        let (tag, bits) = neg_zero.stable_code();
        assert_eq!(Gate::from_stable_code(tag, bits).unwrap().stable_code().1, bits);
    }

    #[test]
    fn from_stable_code_rejects_corrupt_records() {
        // Unknown tag: a future gate or flipped byte.
        assert_eq!(Gate::from_stable_code(17, 0), None);
        assert_eq!(Gate::from_stable_code(255, 0), None);
        // Non-parametric tag carrying parameter bits: corrupt payload.
        assert_eq!(Gate::from_stable_code(0, 1), None);
        assert_eq!(Gate::from_stable_code(12, 0xdead_beef), None);
    }
}

//! Stable hashing for circuits — re-exported from `fastsc-graph`.
//!
//! The pinned FNV-1a/64 [`StableHasher`] is implemented once, in the
//! workspace's bottom crate ([`fastsc_graph::hash`]), so circuit hashes,
//! graph hashes, config fingerprints, and device fingerprints all fold
//! through the same algorithm by construction. This module keeps the
//! historical `fastsc_ir::hash` path working for IR users.

pub use fastsc_graph::hash::StableHasher;

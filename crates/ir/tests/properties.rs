//! Property-based tests for the circuit IR: decomposition and peephole
//! passes must preserve the circuit unitary (up to global phase), and
//! layering must respect dependencies.

use fastsc_ir::decompose::{decompose, Strategy as Lowering};
use fastsc_ir::optimize::peephole;
use fastsc_ir::unitary::{circuit_unitary, matrices_equal_up_to_phase};
use fastsc_ir::{layering, Circuit, Gate, Operands};
use proptest::prelude::*;

/// An arbitrary gate on an `n`-qubit circuit, encoded as a constructor.
fn arb_instruction(n: usize) -> impl Strategy<Value = (u8, usize, usize, f64)> {
    (0u8..12, 0..n, 0..n, -3.0f64..3.0)
}

fn build_circuit(n: usize, raw: &[(u8, usize, usize, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b, angle) in raw {
        match kind {
            0 => c.push1(Gate::H, a).map(|_| ()).expect("valid"),
            1 => c.push1(Gate::X, a).map(|_| ()).expect("valid"),
            2 => c.push1(Gate::T, a).map(|_| ()).expect("valid"),
            3 => c.push1(Gate::S, a).map(|_| ()).expect("valid"),
            4 => c.push1(Gate::Rz(angle), a).map(|_| ()).expect("valid"),
            5 => c.push1(Gate::Rx(angle), a).map(|_| ()).expect("valid"),
            6 => c.push1(Gate::Ry(angle), a).map(|_| ()).expect("valid"),
            k => {
                if a != b {
                    let gate = match k {
                        7 => Gate::Cnot,
                        8 => Gate::Cz,
                        9 => Gate::Swap,
                        10 => Gate::ISwap,
                        _ => Gate::SqrtISwap,
                    };
                    c.push2(gate, a, b).map(|_| ()).expect("valid");
                }
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decompose_preserves_unitary(
        raw in proptest::collection::vec(arb_instruction(3), 0..10),
    ) {
        let c = build_circuit(3, &raw);
        for s in [Lowering::CzOnly, Lowering::ISwapOnly, Lowering::SqrtISwapOnly, Lowering::Hybrid] {
            let lowered = decompose(&c, s);
            prop_assert!(
                matrices_equal_up_to_phase(
                    &circuit_unitary(&c), &circuit_unitary(&lowered), 1e-8),
                "{s:?} changed the unitary"
            );
            let native = s.native_set();
            for inst in lowered.instructions() {
                prop_assert!(native.contains(inst.gate));
            }
        }
    }

    #[test]
    fn peephole_preserves_unitary(
        raw in proptest::collection::vec(arb_instruction(3), 0..14),
    ) {
        let c = build_circuit(3, &raw);
        let cleaned = peephole(&c);
        prop_assert!(cleaned.len() <= c.len());
        prop_assert!(matrices_equal_up_to_phase(
            &circuit_unitary(&c), &circuit_unitary(&cleaned), 1e-8));
    }

    #[test]
    fn peephole_is_idempotent(
        raw in proptest::collection::vec(arb_instruction(3), 0..14),
    ) {
        let c = build_circuit(3, &raw);
        let once = peephole(&c);
        let twice = peephole(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn asap_layers_respect_dependencies(
        raw in proptest::collection::vec(arb_instruction(4), 0..20),
    ) {
        let c = build_circuit(4, &raw);
        let layers = layering::asap_layers(&c);
        // Each instruction appears exactly once.
        let mut seen = vec![false; c.len()];
        for layer in &layers {
            // No two instructions in a layer share a qubit.
            for (i, &x) in layer.iter().enumerate() {
                prop_assert!(!seen[x]);
                seen[x] = true;
                for &y in &layer[i + 1..] {
                    let ox = c.instructions()[x].operands;
                    let oy = c.instructions()[y].operands;
                    prop_assert!(!ox.overlaps(oy), "layer shares a qubit");
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Program order within a qubit maps to increasing layers.
        let mut layer_of = vec![0usize; c.len()];
        for (l, layer) in layers.iter().enumerate() {
            for &i in layer {
                layer_of[i] = l;
            }
        }
        let dag = layering::Dag::build(&c);
        for i in 0..c.len() {
            for &p in dag.preds(i) {
                prop_assert!(layer_of[p] < layer_of[i]);
            }
        }
    }

    #[test]
    fn criticality_bounded_by_depth(
        raw in proptest::collection::vec(arb_instruction(4), 1..20),
    ) {
        let c = build_circuit(4, &raw);
        if c.is_empty() {
            return Ok(());
        }
        let crit = layering::criticality(&c);
        let depth = c.depth();
        let max_crit = crit.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(max_crit, depth, "longest chain equals depth");
        for &k in &crit {
            prop_assert!(k >= 1);
        }
    }

    #[test]
    fn depth_never_increases_under_peephole(
        raw in proptest::collection::vec(arb_instruction(3), 0..14),
    ) {
        let c = build_circuit(3, &raw);
        prop_assert!(peephole(&c).depth() <= c.depth());
    }

    #[test]
    fn structural_hash_distinguishes_gate_reorderings(
        raw in proptest::collection::vec(arb_instruction(4), 2..16),
        i in 0usize..16,
        j in 0usize..16,
    ) {
        // The hash feeds whole-schedule cache keys, so any observable
        // reordering must produce a different key.
        let c = build_circuit(4, &raw);
        if c.len() < 2 {
            return Ok(());
        }
        let (i, j) = (i % c.len(), j % c.len());
        let mut reordered_insts = c.instructions().to_vec();
        reordered_insts.swap(i, j);
        let mut reordered = Circuit::new(4);
        for inst in reordered_insts {
            reordered.push(inst).expect("valid");
        }
        if reordered == c {
            prop_assert_eq!(c.structural_hash(), reordered.structural_hash());
        } else {
            prop_assert_ne!(
                c.structural_hash(),
                reordered.structural_hash(),
                "swapping instructions {} and {} kept the hash",
                i,
                j
            );
        }
    }

    #[test]
    fn structural_hash_distinguishes_qubit_relabelings(
        raw in proptest::collection::vec(arb_instruction(4), 1..16),
        rotation in 1usize..4,
    ) {
        let c = build_circuit(4, &raw);
        let mut relabeled = Circuit::new(4);
        for inst in c.instructions() {
            match inst.operands {
                Operands::One(q) => {
                    relabeled.push1(inst.gate, (q + rotation) % 4).expect("valid");
                }
                Operands::Two(a, b) => {
                    relabeled
                        .push2(inst.gate, (a + rotation) % 4, (b + rotation) % 4)
                        .expect("valid");
                }
            }
        }
        if relabeled == c {
            prop_assert_eq!(c.structural_hash(), relabeled.structural_hash());
        } else {
            prop_assert_ne!(
                c.structural_hash(),
                relabeled.structural_hash(),
                "rotating qubit labels by {} kept the hash",
                rotation
            );
        }
    }

    #[test]
    fn structural_hash_is_a_pure_function(
        raw in proptest::collection::vec(arb_instruction(4), 0..16),
    ) {
        let a = build_circuit(4, &raw);
        let b = build_circuit(4, &raw);
        prop_assert_eq!(a.structural_hash(), b.structural_hash());
    }
}

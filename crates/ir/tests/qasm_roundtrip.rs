//! Property tests of the QASM boundary: `to_qasm` → `from_qasm` must be
//! the identity on circuit structure (bit-exact angles included), and
//! every entry of the shared malformed corpus must fail with a typed,
//! located error — the same corpus the network serving layer's tests
//! replay over a socket.

use fastsc_ir::qasm::{from_qasm, malformed_corpus, to_qasm, QasmError};
use fastsc_ir::{Circuit, Gate};
use proptest::prelude::*;

/// One arbitrary gate over all 17 supported constructors, with operands
/// and a raw angle-bit recipe. Angles are built from raw `u64` bit
/// patterns (filtered to finite values) so the round-trip is exercised
/// on awkward floats — subnormals, huge magnitudes, negative zero — not
/// just round decimals.
fn arb_gate(n: usize) -> impl Strategy<Value = (u8, usize, usize, u64)> {
    (0u8..17, 0..n, 0..n, any::<u64>())
}

fn angle_from_bits(bits: u64) -> f64 {
    let a = f64::from_bits(bits);
    if a.is_finite() {
        a
    } else {
        // Map NaN/inf bit patterns to a representative ordinary angle.
        1.234_567_890_123_456_7
    }
}

fn build_circuit(n: usize, raw: &[(u8, usize, usize, u64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b, bits) in raw {
        let angle = angle_from_bits(bits);
        let one = |g: Gate| -> Option<Gate> { Some(g) };
        let gate = match kind {
            0 => one(Gate::Id),
            1 => one(Gate::X),
            2 => one(Gate::Y),
            3 => one(Gate::Z),
            4 => one(Gate::H),
            5 => one(Gate::S),
            6 => one(Gate::Sdg),
            7 => one(Gate::T),
            8 => one(Gate::Tdg),
            9 => one(Gate::Rx(angle)),
            10 => one(Gate::Ry(angle)),
            11 => one(Gate::Rz(angle)),
            _ => None,
        };
        match gate {
            Some(g) => {
                c.push1(g, a).expect("valid single-qubit push");
            }
            None if a != b => {
                let g = match kind {
                    12 => Gate::Cnot,
                    13 => Gate::Cz,
                    14 => Gate::Swap,
                    15 => Gate::ISwap,
                    _ => Gate::SqrtISwap,
                };
                c.push2(g, a, b).expect("valid two-qubit push");
            }
            None => {}
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The serving layer's contract: a circuit serialized to QASM and
    /// parsed back is structurally identical — same pinned hash, so the
    /// compiler will produce a bit-identical schedule for it.
    #[test]
    fn to_qasm_from_qasm_preserves_the_structural_hash(
        n in 1usize..6,
        raw in proptest::collection::vec(arb_gate(5), 0..24),
    ) {
        let raw: Vec<_> = raw.into_iter()
            .map(|(k, a, b, bits)| (k, a % n, b % n, bits))
            .collect();
        let original = build_circuit(n, &raw);
        let text = to_qasm(&original);
        let parsed = from_qasm(&text).expect("emitted QASM parses");
        prop_assert_eq!(
            original.structural_hash(),
            parsed.structural_hash(),
            "round-trip changed the circuit:\n{}",
            text
        );
        prop_assert_eq!(original.n_qubits(), parsed.n_qubits());
        prop_assert_eq!(original.len(), parsed.len());
    }

    /// Angles must survive bit-exactly, not approximately.
    #[test]
    fn rotation_angles_round_trip_bit_exactly(bits in any::<u64>()) {
        let angle = angle_from_bits(bits);
        let mut c = Circuit::new(1);
        c.push1(Gate::Rz(angle), 0).expect("valid");
        let parsed = from_qasm(&to_qasm(&c)).expect("parses");
        let Gate::Rz(back) = parsed.instructions()[0].gate else {
            panic!("gate identity changed");
        };
        prop_assert_eq!(angle.to_bits(), back.to_bits());
    }
}

/// Every shared-corpus entry fails with a typed error, and entries past
/// the preamble stage locate the failure on a real line of the source.
#[test]
fn malformed_corpus_errors_are_typed_and_located() {
    for (name, source) in malformed_corpus() {
        let err = match from_qasm(source) {
            Err(e) => e,
            Ok(c) => {
                panic!("corpus entry {name:?} parsed into a {}-qubit circuit", c.n_qubits())
            }
        };
        // The stable code is what travels in server error frames.
        assert!(!err.code().is_empty(), "{name}: empty error code");
        if let Some(line) = err.line() {
            let max = source.lines().count().max(1);
            assert!((1..=max).contains(&line), "{name}: line {line} outside 1..={max}");
            assert!(err.column().is_some(), "{name}: located line but no column");
        } else {
            assert!(
                matches!(err, QasmError::MissingRegister),
                "{name}: only MissingRegister may omit a location, got {err:?}"
            );
        }
    }
}

/// The corpus is the shared contract with the server tests: pin its
/// shape so an accidental rename or removal breaks loudly here rather
/// than silently weakening the wire tests.
#[test]
fn malformed_corpus_covers_every_error_family() {
    let corpus = malformed_corpus();
    assert!(corpus.len() >= 20, "corpus shrank to {} entries", corpus.len());
    let codes: std::collections::BTreeSet<&'static str> = corpus
        .iter()
        .map(|(_, source)| from_qasm(source).expect_err("corpus must fail").code())
        .collect();
    for family in [
        "missing_semicolon",
        "bad_register",
        "duplicate_register",
        "unsupported_gate",
        "bad_operand",
        "bad_angle",
        "wrong_arity",
        "qubit_out_of_range",
        "duplicate_operand",
        "missing_register",
    ] {
        assert!(codes.contains(family), "no corpus entry exercises {family:?}");
    }
}

//! **FastSC** — systematic crosstalk mitigation for superconducting qubits
//! via frequency-aware compilation.
//!
//! A from-scratch Rust implementation of Ding et al., *Systematic Crosstalk
//! Mitigation for Superconducting Qubits via Frequency-Aware Compilation*
//! (MICRO 2020), including every substrate the paper relies on. This
//! umbrella crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `fastsc-graph` | connectivity/crosstalk graphs, colorings, topologies |
//! | [`smt`] | `fastsc-smt` | difference-logic SMT solver + `smt_find`-style maximization |
//! | [`ir`] | `fastsc-ir` | circuit IR, gate unitaries, slicing, decomposition |
//! | [`device`] | `fastsc-device` | transmon specs, frequency partition, couplers |
//! | [`noise`] | `fastsc-noise` | crosstalk/decoherence models, `P_success` estimator |
//! | [`workloads`] | `fastsc-workloads` | BV / QAOA / ISING / QGAN / XEB generators |
//! | [`compiler`] | `fastsc-core` | ColorDynamic and the Table I baselines |
//! | [`service`] | `fastsc-service` | sharded multi-device compile service + result cache |
//! | [`queue`] | `fastsc-queue` | async admission queue: backpressure, priorities, deadlines, streaming |
//! | [`server`] | `fastsc-server` | TCP wire protocol, multi-tenant sessions, rate limits and quotas |
//! | [`store`] | `fastsc-store` | crash-safe on-disk artifact store: warm start + fleet pre-warming |
//! | [`sim`] | `fastsc-sim` | noisy state-vector + two-transmon qutrit simulation |
//! | [`telemetry`] | `fastsc-telemetry` | per-job span traces + Prometheus-style metrics |
//!
//! # Quickstart
//!
//! ```
//! use fastsc::compiler::{Compiler, CompilerConfig, Strategy};
//! use fastsc::device::Device;
//! use fastsc::noise::{estimate, NoiseConfig};
//! use fastsc::workloads::Benchmark;
//!
//! // A 3x3 tunable-transmon mesh with fabrication variation.
//! let device = Device::grid(3, 3, 42);
//! let compiler = Compiler::new(device, CompilerConfig::default());
//!
//! // Compile a 5-cycle XEB circuit with the paper's ColorDynamic.
//! let program = Benchmark::Xeb(9, 5).build(42);
//! let compiled = compiler.compile(&program, Strategy::ColorDynamic)?;
//!
//! // Estimate the worst-case program success rate (paper Eq. 4).
//! let report = estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default());
//! assert!(report.p_success > 0.0 && report.p_success <= 1.0);
//! # Ok::<(), fastsc::compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fastsc_core as compiler;
pub use fastsc_device as device;
pub use fastsc_graph as graph;
pub use fastsc_ir as ir;
pub use fastsc_noise as noise;
pub use fastsc_queue as queue;
pub use fastsc_server as server;
pub use fastsc_service as service;
pub use fastsc_sim as sim;
pub use fastsc_smt as smt;
pub use fastsc_store as store;
pub use fastsc_telemetry as telemetry;
pub use fastsc_workloads as workloads;

//! End-to-end integration tests across the whole workspace: program
//! generation -> routing -> decomposition -> scheduling -> frequency
//! assignment -> success estimation -> noisy simulation.

use fastsc::compiler::{Compiler, CompilerConfig, Strategy};
use fastsc::device::{CouplerKind, Device};
use fastsc::noise::{estimate, NoiseConfig};
use fastsc::sim::simulate_success;
use fastsc::workloads::Benchmark;

fn p_success(compiler: &Compiler, b: Benchmark, s: Strategy) -> f64 {
    let compiled = compiler.compile(&b.build(7), s).expect("compiles");
    estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default()).p_success
}

#[test]
fn full_suite_compiles_under_every_strategy() {
    let device = Device::grid(4, 4, 2020);
    let compiler = Compiler::new(device, CompilerConfig::default());
    for b in [
        Benchmark::Bv(16),
        Benchmark::Qaoa(9),
        Benchmark::Ising(4),
        Benchmark::Qgan(16),
        Benchmark::Xeb(16, 5),
    ] {
        for s in Strategy::all() {
            let compiled = compiler.compile(&b.build(1), s).expect("compiles");
            let report =
                estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default());
            assert!(
                report.p_success.is_finite() && (0.0..=1.0).contains(&report.p_success),
                "{b} under {s}"
            );
        }
    }
}

#[test]
fn colordynamic_beats_serialization_on_parallel_workloads() {
    let device = Device::grid(4, 4, 2020);
    let compiler = Compiler::new(device, CompilerConfig::default());
    for b in [Benchmark::Xeb(16, 5), Benchmark::Xeb(16, 10), Benchmark::Ising(16)] {
        let cd = p_success(&compiler, b, Strategy::ColorDynamic);
        let u = p_success(&compiler, b, Strategy::BaselineU);
        assert!(cd > u, "{b}: ColorDynamic {cd} <= Baseline U {u}");
    }
}

#[test]
fn colordynamic_crushes_naive_on_parallel_workloads() {
    let device = Device::grid(4, 4, 2020);
    let compiler = Compiler::new(device, CompilerConfig::default());
    let cd = p_success(&compiler, Benchmark::Xeb(16, 10), Strategy::ColorDynamic);
    let n = p_success(&compiler, Benchmark::Xeb(16, 10), Strategy::BaselineN);
    assert!(cd > 50.0 * n.max(1e-12), "CD {cd} vs N {n}");
}

#[test]
fn colordynamic_matches_ideal_gmon_within_factor_two() {
    // The headline claim: fixed-coupler hardware + ColorDynamic is
    // competitive with ideal (residual = 0) tunable-coupler hardware.
    let device = Device::grid(4, 4, 2020);
    let fixed = Compiler::new(device.clone(), CompilerConfig::default());
    let gmon = Compiler::new(
        device.with_coupler(CouplerKind::tunable(0.0)),
        CompilerConfig::default(),
    );
    for b in [Benchmark::Xeb(16, 5), Benchmark::Xeb(16, 10)] {
        let cd = p_success(&fixed, b, Strategy::ColorDynamic);
        let g = p_success(&gmon, b, Strategy::BaselineG);
        assert!(cd > 0.5 * g, "{b}: CD {cd} not competitive with gmon {g}");
    }
}

#[test]
fn gmon_with_residual_coupling_degrades_monotonically() {
    let base = Device::grid(3, 3, 5);
    let program = Benchmark::Xeb(9, 10).build(3);
    let mut last = f64::INFINITY;
    for r in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let compiler = Compiler::new(
            base.with_coupler(CouplerKind::tunable(r)),
            CompilerConfig::default(),
        );
        let compiled = compiler.compile(&program, Strategy::BaselineG).expect("compiles");
        let p =
            estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default()).p_success;
        assert!(p <= last + 1e-9, "residual {r}: p rose to {p}");
        last = p;
    }
}

#[test]
fn serial_baselines_are_deeper() {
    let device = Device::grid(4, 4, 2020);
    let compiler = Compiler::new(device, CompilerConfig::default());
    let program = Benchmark::Xeb(16, 10).build(7);
    let u = compiler.compile(&program, Strategy::BaselineU).expect("compiles");
    let n = compiler.compile(&program, Strategy::BaselineN).expect("compiles");
    let cd = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
    assert!(u.schedule.depth() > cd.schedule.depth());
    assert!(cd.schedule.depth() >= n.schedule.depth(), "CD throttles at most mildly");
    assert!(u.schedule.total_duration_ns() > cd.schedule.total_duration_ns());
}

#[test]
fn heuristic_tracks_simulation() {
    // §VI-C validation: on small circuits the analytic estimate stays
    // within half a decade of the simulated success and preserves the
    // qualitative strategy ranking.
    let device = Device::grid(3, 3, 5);
    let compiler = Compiler::new(device, CompilerConfig::default());
    for b in [Benchmark::Bv(9), Benchmark::Xeb(9, 5)] {
        for s in [Strategy::ColorDynamic, Strategy::BaselineU, Strategy::BaselineS] {
            let compiled = compiler.compile(&b.build(3), s).expect("compiles");
            let heuristic =
                estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default());
            let sim = simulate_success(compiler.device(), &compiled.schedule, 50, 17);
            let gap = (heuristic.p_success.max(1e-6) / sim.success.max(1e-6)).log10().abs();
            assert!(
                gap < 0.5,
                "{b}/{s}: heuristic {} vs simulation {} ({}+/-{}) differs by {gap:.2} decades",
                heuristic.p_success,
                sim.success,
                sim.success,
                sim.std_error
            );
        }
    }
}

#[test]
fn color_budget_sweep_has_interior_optimum_or_plateau() {
    // Fig. 11: limited tunability. Success at 2-3 colors should be at
    // least as good as at 1 color for a parallel workload (the sweet spot
    // is rarely at full serialization).
    let device = Device::grid(4, 4, 2020);
    let program = Benchmark::Xeb(16, 10).build(7);
    let mut successes = Vec::new();
    for k in 1..=4 {
        let compiler = Compiler::new(device.clone(), CompilerConfig::with_max_colors(k));
        let compiled = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
        successes.push(
            estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default()).p_success,
        );
    }
    let best = successes.iter().copied().fold(f64::MIN, f64::max);
    assert!(best >= successes[0], "budget sweep {successes:?} should not peak at 1 color only");
}

#[test]
fn compilation_works_on_heavy_hex() {
    // The paper's algorithm takes arbitrary connectivity; IBM's heavy-hex
    // (degree <= 3) is a natural modern target.
    use fastsc::device::DeviceBuilder;
    use fastsc::graph::topology;
    let lattice = topology::heavy_hex(2, 2);
    let n = lattice.node_count();
    let mut builder = DeviceBuilder::new(lattice);
    builder.seed(5);
    let device = builder.build();
    let compiler = Compiler::new(device, CompilerConfig::default());
    let program = fastsc::workloads::qgan(n, 3);
    for s in [Strategy::ColorDynamic, Strategy::BaselineU] {
        let compiled = compiler.compile(&program, s).expect("compiles on heavy-hex");
        let report = estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default());
        assert!(report.p_success > 0.0, "{s}");
    }
    // Sparse connectivity => small crosstalk graph => few colors.
    let compiled = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
    assert!(compiled.stats.max_colors_used <= 4);
}

#[test]
fn qasm_roundtrip_through_the_compiler() {
    // Export a benchmark to OpenQASM, re-parse it, and verify the two
    // compile to schedules with identical gate multisets.
    use fastsc::ir::qasm;
    let program = fastsc::workloads::qaoa(9, 3);
    let parsed = qasm::from_qasm(&qasm::to_qasm(&program)).expect("roundtrip");
    let device = Device::grid(3, 3, 4);
    let compiler = Compiler::new(device, CompilerConfig::default());
    let a = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");
    let b = compiler.compile(&parsed, Strategy::ColorDynamic).expect("compiles");
    assert_eq!(a.schedule.gate_multiset(), b.schedule.gate_multiset());
}

#[test]
fn bv_pipeline_preserves_algorithm_semantics() {
    // Compile BV and verify by noiseless simulation of the *schedule*
    // that the data register still reads the hidden string: routing,
    // decomposition and scheduling preserve program semantics end to end.
    use fastsc::ir::math::ZERO;
    use fastsc::sim::StateVector;
    use fastsc::workloads::bv_with_hidden_string;

    let hidden = [true, false, true]; // 3 data qubits + ancilla = 4 qubits
    let program = bv_with_hidden_string(&hidden);
    let device = Device::grid(2, 2, 3);
    let compiler = Compiler::new(device, CompilerConfig::default());
    let compiled = compiler.compile(&program, Strategy::ColorDynamic).expect("compiles");

    let mut state = StateVector::zero(4);
    for cycle in compiled.schedule.cycles() {
        for g in &cycle.gates {
            state.apply_instruction(&g.instruction);
        }
    }
    // Routing may permute logical qubits; recover the permutation from the
    // router and check the mapped data bits.
    let routed =
        fastsc::compiler::router::route(&program, compiler.device()).expect("routable");
    let mapping = routed.final_mapping;
    let mut probability_correct = 0.0;
    let dim = state.amplitudes().len();
    for idx in 0..dim {
        let bit = |phys: usize| (idx >> (4 - 1 - phys)) & 1 == 1;
        let matches =
            hidden.iter().enumerate().all(|(logical, &expect)| bit(mapping[logical]) == expect);
        if matches {
            probability_correct += state.amplitudes()[idx].norm_sqr();
        }
        let _ = ZERO;
    }
    assert!(
        (probability_correct - 1.0).abs() < 1e-9,
        "BV semantics broken: correct-readout probability {probability_correct}"
    );
}

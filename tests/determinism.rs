//! Determinism regression tests: compilation is a pure function of
//! `(device seed, program seed, strategy)`. Two runs with the same seeds
//! must produce bit-identical schedules and success estimates — the
//! property the batch compiler's parallel/sequential equivalence and
//! every paper-figure reproduction rely on.

use fastsc::compiler::{Compiler, CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::noise::{estimate, NoiseConfig};
use fastsc::workloads::Benchmark;

#[test]
fn same_seed_same_schedule_all_strategies() {
    let program_a = Benchmark::Xeb(9, 5).build(42);
    let program_b = Benchmark::Xeb(9, 5).build(42);
    assert_eq!(program_a, program_b, "workload generation must be seed-deterministic");

    for strategy in Strategy::all() {
        let compiler_a = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default());
        let compiler_b = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default());
        let a = compiler_a.compile(&program_a, strategy).expect("compiles");
        let b = compiler_b.compile(&program_b, strategy).expect("compiles");
        assert_eq!(a.schedule, b.schedule, "{strategy} schedule is not reproducible");
        let pa = estimate(compiler_a.device(), &a.schedule, &NoiseConfig::default()).p_success;
        let pb = estimate(compiler_b.device(), &b.schedule, &NoiseConfig::default()).p_success;
        assert_eq!(
            pa.to_bits(),
            pb.to_bits(),
            "{strategy} p_success is not bit-identical: {pa} vs {pb}"
        );
    }
}

#[test]
fn different_device_seeds_change_frequencies() {
    // Counter-test: determinism must come from the seed, not from the
    // model ignoring it. Different fabrication seeds give different
    // sampled omega_max, hence different parking frequencies.
    let program = Benchmark::Xeb(9, 5).build(42);
    let a = Compiler::new(Device::grid(3, 3, 1), CompilerConfig::default())
        .compile(&program, Strategy::ColorDynamic)
        .expect("compiles");
    let b = Compiler::new(Device::grid(3, 3, 2), CompilerConfig::default())
        .compile(&program, Strategy::ColorDynamic)
        .expect("compiles");
    assert_ne!(a.schedule, b.schedule, "fabrication variation must depend on the device seed");
}

#[test]
fn different_program_seeds_change_xeb_layers() {
    let a = Benchmark::Xeb(9, 5).build(1);
    let b = Benchmark::Xeb(9, 5).build(2);
    assert_ne!(a, b, "XEB single-qubit layers must depend on the seed");
}

//! Determinism regression tests: compilation is a pure function of
//! `(device seed, program seed, strategy)`. Two runs with the same seeds
//! must produce bit-identical schedules and success estimates — the
//! property the batch compiler's parallel/sequential equivalence and
//! every paper-figure reproduction rely on.

use fastsc::compiler::batch::{BatchCompiler, CompileJob};
use fastsc::compiler::{CompileContext, Compiler, CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::noise::{estimate, NoiseConfig};
use fastsc::service::{
    CapacityAware, CompileService, Composite, FidelityAware, LeastLoaded, ProgramAffinity,
    RoundRobin, ShardPolicy,
};
use fastsc::workloads::Benchmark;
use std::sync::Arc;

#[test]
fn same_seed_same_schedule_all_strategies() {
    let program_a = Benchmark::Xeb(9, 5).build(42);
    let program_b = Benchmark::Xeb(9, 5).build(42);
    assert_eq!(program_a, program_b, "workload generation must be seed-deterministic");

    for strategy in Strategy::all() {
        let compiler_a = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default());
        let compiler_b = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default());
        let a = compiler_a.compile(&program_a, strategy).expect("compiles");
        let b = compiler_b.compile(&program_b, strategy).expect("compiles");
        assert_eq!(a.schedule, b.schedule, "{strategy} schedule is not reproducible");
        let pa = estimate(compiler_a.device(), &a.schedule, &NoiseConfig::default()).p_success;
        let pb = estimate(compiler_b.device(), &b.schedule, &NoiseConfig::default()).p_success;
        assert_eq!(
            pa.to_bits(),
            pb.to_bits(),
            "{strategy} p_success is not bit-identical: {pa} vs {pb}"
        );
    }
}

#[test]
fn shared_context_is_bit_identical_to_fresh_compilers() {
    // Device-wide precomputation (crosstalk graph, parking, static
    // colorings, SMT memo) lives in an Arc-shared CompileContext; a warm,
    // shared context must be invisible in the output. Compile each
    // strategy three ways — fresh compiler, shared context, shared
    // context again (memo now warm) — and demand bit-identical schedules
    // and success estimates.
    let program = Benchmark::Xeb(9, 5).build(42);
    let context = Arc::new(
        CompileContext::new(Device::grid(3, 3, 7), CompilerConfig::default())
            .expect("context builds"),
    );
    let shared_a = Compiler::with_context(Arc::clone(&context));
    let shared_b = Compiler::with_context(Arc::clone(&context));

    for strategy in Strategy::all() {
        let fresh = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
            .compile(&program, strategy)
            .expect("compiles");
        let warm_once = shared_a.compile(&program, strategy).expect("compiles");
        let warm_twice = shared_b.compile(&program, strategy).expect("compiles");
        assert_eq!(
            fresh.schedule, warm_once.schedule,
            "{strategy}: shared context diverged from a fresh compiler"
        );
        assert_eq!(
            warm_once.schedule, warm_twice.schedule,
            "{strategy}: a warm SMT memo changed the schedule"
        );
        let pf = estimate(context.device(), &fresh.schedule, &NoiseConfig::default()).p_success;
        let pw =
            estimate(context.device(), &warm_once.schedule, &NoiseConfig::default()).p_success;
        assert_eq!(pf.to_bits(), pw.to_bits(), "{strategy} p_success not bit-identical");
    }
}

#[test]
fn persistent_pool_parallel_matches_sequential_across_strategies() {
    // The batch front end fans out over the vendored rayon's persistent
    // worker pool; pooled parallel output must stay bit-identical to the
    // sequential reference path for every strategy.
    let jobs: Vec<CompileJob> = Strategy::all()
        .into_iter()
        .enumerate()
        .map(|(i, s)| CompileJob::new(Benchmark::Xeb(9, 4).build(i as u64), s))
        .collect();
    let batch = BatchCompiler::new(Device::grid(3, 3, 7), CompilerConfig::default());
    let sequential = batch.compile_batch_sequential(jobs.clone());
    let parallel = BatchCompiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
        .num_threads(4)
        .compile_batch(jobs);
    assert_eq!(sequential.len(), parallel.len());
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        let s = s.as_ref().expect("sequential slot compiles");
        let p = p.as_ref().expect("parallel slot compiles");
        assert_eq!(s.schedule, p.schedule, "slot {i} diverged across the worker pool");
    }
}

#[test]
fn batch_through_shared_context_matches_fresh_batch() {
    let context = Arc::new(
        CompileContext::new(Device::grid(3, 3, 7), CompilerConfig::default())
            .expect("context builds"),
    );
    let jobs: Vec<CompileJob> = Strategy::all()
        .into_iter()
        .map(|s| CompileJob::new(Benchmark::Qaoa(8).build(5), s))
        .collect();
    let via_context =
        BatchCompiler::from_context(Arc::clone(&context)).compile_batch(jobs.clone());
    let fresh = BatchCompiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
        .compile_batch(jobs);
    for (i, (a, b)) in via_context.iter().zip(&fresh).enumerate() {
        assert_eq!(
            a.as_ref().expect("compiles").schedule,
            b.as_ref().expect("compiles").schedule,
            "slot {i}: context-backed batch diverged"
        );
    }
}

#[test]
fn sharded_service_compiles_are_bit_identical_to_fresh_single_device_compiles() {
    // The full service stack — shard routing, whole-schedule result
    // cache, work-stealing dispatch — must be invisible in the output:
    // every reply equals a fresh, cold, sequential compile of the same
    // job on the device it was routed to, for all five strategies and
    // every built-in policy (including the telemetry-driven
    // FidelityAware and Composite — placement by calibration data must
    // not touch what gets compiled, only where).
    let devices = [Device::grid(3, 3, 7), Device::grid(3, 3, 11)];
    let jobs: Vec<CompileJob> = Strategy::all()
        .into_iter()
        .enumerate()
        .map(|(i, s)| CompileJob::new(Benchmark::Xeb(9, 4).build(i as u64), s))
        .collect();

    let policies: Vec<Box<dyn ShardPolicy>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(LeastLoaded::new()),
        Box::new(ProgramAffinity::new()),
        Box::new(CapacityAware::new()),
        Box::new(FidelityAware::new()),
        Box::new(Composite::standard()),
    ];
    for (round, policy) in policies.into_iter().enumerate() {
        let mut service = CompileService::new(RoundRobin::new());
        for device in &devices {
            service
                .register_device(device.clone(), CompilerConfig::default())
                .expect("registers");
        }
        service.set_policy_boxed(policy);
        let replies = service.compile_batch(jobs.clone());
        for (i, (reply, job)) in replies.iter().zip(&jobs).enumerate() {
            let reply = reply.as_ref().expect("compiles");
            let fresh = Compiler::new(devices[reply.shard].clone(), CompilerConfig::default())
                .compile(&job.program, job.strategy)
                .expect("compiles");
            assert_eq!(
                reply.compiled.schedule, fresh.schedule,
                "policy {round}, job {i} ({}): routed compile diverged from fresh",
                job.strategy
            );
            let pr = estimate(
                &devices[reply.shard],
                &reply.compiled.schedule,
                &NoiseConfig::default(),
            )
            .p_success;
            let pf = estimate(&devices[reply.shard], &fresh.schedule, &NoiseConfig::default())
                .p_success;
            assert_eq!(pr.to_bits(), pf.to_bits(), "job {i} p_success not bit-identical");
        }
    }
}

#[test]
fn fidelity_routed_compiles_repeat_bit_identically_across_services() {
    // FidelityAware consumes floating-point calibration scores; the
    // whole pipeline from profile construction to routed schedule must
    // still be reproducible run to run (same fleet, same jobs, same
    // shards, same bits).
    let build_service = || {
        let mut service = CompileService::new(FidelityAware::new());
        service
            .register_device(Device::grid(3, 3, 7), CompilerConfig::default())
            .expect("registers");
        service
            .register_device(Device::grid(3, 3, 11), CompilerConfig::default())
            .expect("registers");
        service
    };
    let jobs: Vec<CompileJob> = Strategy::all()
        .into_iter()
        .enumerate()
        .map(|(i, s)| CompileJob::new(Benchmark::Bv(4 + i).build(3), s))
        .collect();
    let a = build_service().compile_batch_sequential(jobs.clone());
    let b = build_service().compile_batch(jobs);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        let x = x.as_ref().expect("compiles");
        let y = y.as_ref().expect("compiles");
        assert_eq!(x.shard, y.shard, "slot {i}: fidelity routing not reproducible");
        assert_eq!(x.compiled.schedule, y.compiled.schedule, "slot {i} diverged");
    }
}

#[test]
fn warm_result_cache_hits_are_bit_identical_to_cold_compiles() {
    let service =
        CompileService::single_shard(Device::grid(3, 3, 7), CompilerConfig::default())
            .expect("builds");
    let jobs: Vec<CompileJob> = Strategy::all()
        .into_iter()
        .map(|s| CompileJob::new(Benchmark::Qaoa(8).build(5), s))
        .collect();
    let cold = service.compile_batch(jobs.clone());
    let warm = service.compile_batch(jobs.clone());
    for (i, ((c, w), job)) in cold.iter().zip(&warm).zip(&jobs).enumerate() {
        let c = c.as_ref().expect("cold compiles");
        let w = w.as_ref().expect("warm compiles");
        assert!(!c.cache_hit && w.cache_hit, "slot {i} cache provenance is wrong");
        assert_eq!(c.compiled.schedule, w.compiled.schedule, "slot {i} hit diverged");
        let fresh = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
            .compile(&job.program, job.strategy)
            .expect("compiles");
        assert_eq!(
            w.compiled.schedule, fresh.schedule,
            "slot {i} ({}): cached schedule diverged from a fresh compile",
            job.strategy
        );
    }
}

#[test]
fn work_stealing_batches_match_sequential_across_strategies() {
    // A deliberately skewed batch (heavy XEB jobs first, tiny BV jobs
    // after) exercises stealing: workers that finish their own deque
    // steal the tail of the busy worker's. Output must stay bit-identical
    // to the sequential reference, slot for slot.
    let mut jobs: Vec<CompileJob> = (0..4)
        .map(|i| CompileJob::new(Benchmark::Xeb(9, 12).build(i), Strategy::ColorDynamic))
        .collect();
    for (i, s) in (0..16).zip(Strategy::all().into_iter().cycle()) {
        jobs.push(CompileJob::new(Benchmark::Bv(5).build(i), s));
    }
    let batch = BatchCompiler::new(Device::grid(3, 3, 7), CompilerConfig::default());
    let sequential = batch.compile_batch_sequential(jobs.clone());
    let parallel = BatchCompiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
        .num_threads(4)
        .compile_batch(jobs);
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.as_ref().expect("compiles").schedule,
            p.as_ref().expect("compiles").schedule,
            "slot {i} diverged under work stealing"
        );
    }
}

#[test]
fn queued_compiles_under_contention_match_fresh_sequential_compiles() {
    // The async front end adds admission, priority scheduling, and
    // micro-batched dispatch on top of the service — none of which may
    // touch the output. Two producer threads race all five strategies
    // through a two-shard queue; every reply must equal a fresh, cold,
    // sequential compile on the shard the job was routed to.
    use fastsc::queue::{Backpressure, QueueConfig, QueueService, Submission};
    use std::sync::Arc as StdArc;

    let devices = [Device::grid(3, 3, 7), Device::grid(3, 3, 11)];
    let mut service = CompileService::new(LeastLoaded::new());
    for device in &devices {
        service.register_device(device.clone(), CompilerConfig::default()).expect("registers");
    }
    let queue = StdArc::new(QueueService::new(
        service,
        QueueConfig {
            capacity: 4,
            backpressure: Backpressure::Block,
            max_batch: 3,
            ..QueueConfig::default()
        },
    ));
    let producers: Vec<_> = (0..2u64)
        .map(|producer| {
            let queue = StdArc::clone(&queue);
            std::thread::spawn(move || {
                Strategy::all()
                    .into_iter()
                    .enumerate()
                    .map(|(i, strategy)| {
                        let program = Benchmark::Xeb(9, 4).build(producer * 10 + i as u64);
                        let handle = queue
                            .submit(
                                Submission::new(CompileJob::new(program.clone(), strategy))
                                    .client(producer),
                            )
                            .expect("block mode always admits");
                        (program, strategy, handle)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for producer in producers {
        for (program, strategy, handle) in producer.join().expect("producer finishes") {
            let reply = handle.wait().expect("compiles");
            let fresh = Compiler::new(devices[reply.shard].clone(), CompilerConfig::default())
                .compile(&program, strategy)
                .expect("compiles");
            assert_eq!(
                reply.compiled.schedule, fresh.schedule,
                "{strategy}: queued schedule diverged from a fresh sequential compile"
            );
            let pq = estimate(
                &devices[reply.shard],
                &reply.compiled.schedule,
                &NoiseConfig::default(),
            )
            .p_success;
            let pf = estimate(&devices[reply.shard], &fresh.schedule, &NoiseConfig::default())
                .p_success;
            assert_eq!(pq.to_bits(), pf.to_bits(), "{strategy} p_success not bit-identical");
        }
    }
}

#[test]
fn socket_compiles_are_bit_identical_to_fresh_sequential_compiles() {
    // The network serving layer adds QASM serialization, a TCP round
    // trip, sessions, and the queue — and none of it may touch the
    // output. For every strategy, a program submitted as QASM over a
    // loopback socket must report the exact schedule digest of a fresh,
    // cold, sequential single-device compile of the same program.
    use fastsc::ir::qasm::{from_qasm, to_qasm};
    use fastsc::queue::QueueService;
    use fastsc::server::{Client, Server, TenantConfig};

    let programs = [Benchmark::Xeb(9, 5).build(42), Benchmark::Xeb(4, 3).build(7)];
    let mut service = CompileService::new(CapacityAware::new());
    service
        .register_device(Device::grid(3, 3, 7), CompilerConfig::default())
        .expect("registers");
    let queue = QueueService::with_defaults(service);
    let mut server = Server::start(queue, vec![TenantConfig::generous("suite", "suite", 1)])
        .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("connects");
    client.hello("suite").expect("authenticates");

    for program in &programs {
        let qasm = to_qasm(program);
        // The wire format itself must be lossless first.
        assert_eq!(
            from_qasm(&qasm).expect("round-trips").structural_hash(),
            program.structural_hash(),
            "QASM serialization changed the circuit"
        );
        for strategy in Strategy::all() {
            let job = client
                .submit(&qasm, &strategy.to_string(), "interactive", None)
                .expect("submits");
            let outcome = client.wait(job, 60_000).expect("waits").expect("finishes");
            assert!(outcome.ok, "{strategy}: socket compile failed: {:?}", outcome.message);
            let fresh = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
                .compile(program, strategy)
                .expect("compiles");
            assert_eq!(
                outcome.schedule_hash,
                Some(fresh.schedule.stable_hash()),
                "{strategy}: socket schedule digest diverged from a fresh sequential compile"
            );
        }
    }
    server.shutdown();
}

#[test]
fn partitioned_compile_matches_whole_device_when_no_gate_crosses_a_boundary() {
    // Two disjoint 3x3 grids in one 18-qubit device, running a mirrored
    // XEB9 (every gate duplicated onto the second grid). The partition
    // plan (cap 9) recovers exactly the two components, so no gate
    // crosses a region boundary and the stitch pass has nothing to
    // defer: the partitioned schedule must be bit-identical to the
    // whole-device compile for every frequency-assigning strategy.
    //
    // BaselineU is the documented exemption. It assigns one shared
    // interaction frequency (the band center) and serializes *all*
    // two-qubit gates into distinct cycles device-wide; that global
    // serialization is exactly what per-region engines relax — each
    // region packs its own gates, so the merged schedule is shallower.
    // Frequencies are unchanged; only the cycle packing moves, and the
    // assertion documents that the schedules legitimately differ.
    use fastsc::device::DeviceBuilder;
    use fastsc::graph::Graph;
    use fastsc::ir::{Circuit, Instruction, Operands};

    let mut edges = Vec::new();
    for grid in 0..2usize {
        let off = grid * 9;
        for row in 0..3 {
            for col in 0..3 {
                let q = off + row * 3 + col;
                if col + 1 < 3 {
                    edges.push((q, q + 1));
                }
                if row + 1 < 3 {
                    edges.push((q, q + 3));
                }
            }
        }
    }
    let graph = Graph::with_edges(18, edges.iter().copied()).expect("edges are valid");
    let device = DeviceBuilder::new(graph).seed(7).build();

    let base = Benchmark::Xeb(9, 4).build(7);
    let mut program = Circuit::new(18);
    for inst in base.instructions() {
        program.push(*inst).expect("base operands fit");
        let shifted = match inst.operands {
            Operands::One(q) => Operands::One(q + 9),
            Operands::Two(a, b) => Operands::Two(a + 9, b + 9),
        };
        program
            .push(Instruction { gate: inst.gate, operands: shifted })
            .expect("mirrored operands fit");
    }

    let whole = Compiler::new(device.clone(), CompilerConfig::default());
    let part = Compiler::new(device, CompilerConfig::with_partition(9));
    for strategy in Strategy::all() {
        let w = whole.compile(&program, strategy).expect("compiles");
        let p = part.compile(&program, strategy).expect("compiles");
        if strategy == Strategy::BaselineU {
            assert_ne!(
                w.schedule, p.schedule,
                "BaselineU: regions serialize independently, so partitioned packing \
                 must differ from the device-wide serialization"
            );
        } else {
            assert_eq!(
                w.schedule, p.schedule,
                "{strategy}: partitioned compile diverged from whole-device with no \
                 boundary-crossing gates"
            );
        }
    }
}

#[test]
fn boundary_crossing_partitioned_compiles_are_reproducible() {
    // A 4x4 grid split at cap 8 has cut edges, so XEB16 sends gates
    // across the region boundary and the deferral stitch actually runs.
    // The partitioned output is then a different (valid) schedule from
    // the whole-device one, so bit-identity to the monolithic path is
    // not available as an oracle; instead, pin the stable hash the same
    // way the paper-figure reproductions pin theirs. Two fresh compilers
    // must agree with each other and with the pinned constant — any
    // change to region ordering, the wave gating, or the stitch's
    // deferral rule shows up here.
    let program = Benchmark::Xeb(16, 5).build(7);
    let compile = || {
        Compiler::new(Device::grid(4, 4, 7), CompilerConfig::with_partition(8))
            .compile(&program, Strategy::ColorDynamic)
            .expect("compiles")
    };
    let a = compile();
    let b = compile();
    assert_eq!(a.schedule, b.schedule, "partitioned compile is not reproducible");
    assert_eq!(
        a.schedule.stable_hash(),
        0x36df6030f449abf3,
        "boundary-crossing partitioned schedule changed; if intentional, re-pin"
    );
}

#[test]
fn scalability_tiers_compile_partitioned_and_reproduce() {
    // The shared scalability ladder (64 / 256 / 1024-qubit grids with
    // proportional XEB programs) must compile through the partitioned
    // path at every tier — including the 1024-qubit tier the monolithic
    // benches never reach — and reproduce bit-identically across fresh
    // compilers. The 64-qubit tier is also checked against the
    // whole-device path for plain completion, keeping the two pipelines
    // comparable on the same workload family.
    use fastsc::workloads::scale_tiers;

    for tier in scale_tiers() {
        let program = tier.circuit();
        let compile = || {
            Compiler::new(
                Device::grid(tier.side, tier.side, tier.seed),
                CompilerConfig::with_partition(tier.partition_cap),
            )
            .compile(&program, Strategy::ColorDynamic)
            .expect("partitioned tier compiles")
        };
        let a = compile();
        assert!(a.schedule.depth() > 0, "{}: empty schedule", tier.label());
        let b = compile();
        assert_eq!(
            a.schedule,
            b.schedule,
            "{}: partitioned compile is not reproducible",
            tier.label()
        );
        if tier.n_qubits() == 64 {
            Compiler::new(
                Device::grid(tier.side, tier.side, tier.seed),
                CompilerConfig::default(),
            )
            .compile(&program, Strategy::ColorDynamic)
            .expect("whole-device tier compiles");
        }
    }
}

#[test]
fn tracing_on_off_and_sampled_are_invisible_in_compiled_output() {
    // The observability layer records the compile; it must never steer
    // it. Run the same jobs through identical two-shard queues under
    // every trace mode — off, every-job, deterministic sampling, and
    // per-submission opt-in — and demand the routed shard, the
    // schedule, and the success estimate stay bit-identical to the
    // untraced baseline (and to a fresh, cold, sequential compile).
    use fastsc::queue::{QueueService, Submission};
    use fastsc::telemetry::{set_trace_mode, TraceMode};

    let devices = [Device::grid(3, 3, 7), Device::grid(3, 3, 11)];
    let jobs: Vec<CompileJob> = Strategy::all()
        .into_iter()
        .enumerate()
        .map(|(i, s)| CompileJob::new(Benchmark::Xeb(9, 4).build(i as u64), s))
        .collect();
    // Submit-and-wait one job at a time under RoundRobin so routing is
    // a pure function of submission order — any divergence between
    // modes is then attributable to tracing, not dispatch timing.
    let run = |mode: TraceMode, explicit: bool| {
        set_trace_mode(mode);
        let mut service = CompileService::new(RoundRobin::new());
        for device in &devices {
            service
                .register_device(device.clone(), CompilerConfig::default())
                .expect("registers");
        }
        let queue = QueueService::with_defaults(service);
        let outcomes: Vec<_> = jobs
            .iter()
            .map(|job| {
                let mut submission = Submission::new(job.clone());
                if explicit {
                    submission = submission.traced();
                }
                let handle = queue.submit(submission).expect("admits");
                let reply = handle.wait().expect("compiles");
                let bits = estimate(
                    &devices[reply.shard],
                    &reply.compiled.schedule,
                    &NoiseConfig::default(),
                )
                .p_success
                .to_bits();
                let trace = queue.take_trace(handle.id());
                (reply.shard, reply.compiled.schedule.clone(), bits, trace.is_some())
            })
            .collect();
        set_trace_mode(TraceMode::Off);
        outcomes
    };

    let baseline = run(TraceMode::Off, false);
    assert!(baseline.iter().all(|(.., traced)| !traced), "mode off must record nothing");
    for (label, mode, explicit) in [
        ("explicitly traced submissions", TraceMode::Off, true),
        ("trace mode on", TraceMode::On, false),
        ("sampled tracing", TraceMode::Sampled(2), false),
    ] {
        let outcomes = run(mode, explicit);
        for (i, ((shard, schedule, bits, traced), (base_shard, base_schedule, base_bits, _))) in
            outcomes.iter().zip(&baseline).enumerate()
        {
            assert_eq!(shard, base_shard, "{label}: job {i} was routed elsewhere");
            assert_eq!(schedule, base_schedule, "{label}: job {i} schedule diverged");
            assert_eq!(bits, base_bits, "{label}: job {i} p_success not bit-identical");
            let fresh = Compiler::new(devices[*shard].clone(), CompilerConfig::default())
                .compile(&jobs[i].program, jobs[i].strategy)
                .expect("compiles");
            assert_eq!(
                *schedule, fresh.schedule,
                "{label}: job {i} diverged from a fresh sequential compile"
            );
            if explicit || mode == TraceMode::On {
                assert!(*traced, "{label}: job {i} must have parked a span tree");
            }
        }
    }
}

#[test]
fn different_device_seeds_change_frequencies() {
    // Counter-test: determinism must come from the seed, not from the
    // model ignoring it. Different fabrication seeds give different
    // sampled omega_max, hence different parking frequencies.
    let program = Benchmark::Xeb(9, 5).build(42);
    let a = Compiler::new(Device::grid(3, 3, 1), CompilerConfig::default())
        .compile(&program, Strategy::ColorDynamic)
        .expect("compiles");
    let b = Compiler::new(Device::grid(3, 3, 2), CompilerConfig::default())
        .compile(&program, Strategy::ColorDynamic)
        .expect("compiles");
    assert_ne!(a.schedule, b.schedule, "fabrication variation must depend on the device seed");
}

#[test]
fn different_program_seeds_change_xeb_layers() {
    let a = Benchmark::Xeb(9, 5).build(1);
    let b = Benchmark::Xeb(9, 5).build(2);
    assert_ne!(a, b, "XEB single-qubit layers must depend on the seed");
}

#[test]
fn faulty_then_failed_over_compiles_match_fresh_sequential_compiles() {
    // The fault-tolerance layer must never buy availability with
    // determinism: a job that fails transiently on one shard and is
    // retried onto another must produce exactly the schedule a fresh,
    // cold, sequential compile on the failover shard produces. Shard 0
    // rejects every attempt with an injected error; all five strategies
    // must land on shard 1 bit-identical.
    use fastsc::queue::{QueueConfig, QueueService, RetryPolicy, Submission};
    use fastsc::service::{FaultInjector, FaultKind, FaultPlan, FaultRule};
    use std::time::Duration;

    let devices = [Device::grid(3, 3, 7), Device::grid(3, 3, 11)];
    let mut service = CompileService::new(RoundRobin::new());
    for device in &devices {
        service.register_device(device.clone(), CompilerConfig::default()).expect("registers");
    }
    let plan = FaultPlan::new(71).rule(FaultRule::new(FaultKind::Error).on_shard(0));
    service.set_fault_injector(Some(Arc::new(FaultInjector::new(plan))));
    let queue = QueueService::new(
        service,
        QueueConfig {
            retry: RetryPolicy {
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..QueueConfig::default()
        },
    );

    let submitted: Vec<_> = Strategy::all()
        .into_iter()
        .enumerate()
        .map(|(i, strategy)| {
            let program = Benchmark::Xeb(9, 4).build(100 + i as u64);
            let handle = queue
                .submit(Submission::new(CompileJob::new(program.clone(), strategy)))
                .expect("admits");
            (program, strategy, handle)
        })
        .collect();
    for (program, strategy, handle) in submitted {
        let reply = handle.wait().expect("fails over and compiles");
        assert_eq!(reply.shard, 1, "{strategy}: the retry must leave the faulty shard");
        let fresh = Compiler::new(devices[1].clone(), CompilerConfig::default())
            .compile(&program, strategy)
            .expect("compiles");
        assert_eq!(
            reply.compiled.schedule, fresh.schedule,
            "{strategy}: failed-over schedule diverged from a fresh sequential compile"
        );
        let pq =
            estimate(&devices[1], &reply.compiled.schedule, &NoiseConfig::default()).p_success;
        let pf = estimate(&devices[1], &fresh.schedule, &NoiseConfig::default()).p_success;
        assert_eq!(pq.to_bits(), pf.to_bits(), "{strategy} p_success not bit-identical");
    }
    assert!(queue.stats().retried >= 1, "the injected faults must have forced failovers");
}

// ---------------------------------------------------------------------
// Persistent artifact store: warm start, fleet pre-warming, corruption
// fallback. Store-served artifacts must be invisible in compiled output.
// ---------------------------------------------------------------------

fn store_test_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fastsc-determinism-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}-{}.store", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn strategy_jobs(program: &fastsc::ir::Circuit) -> Vec<CompileJob> {
    Strategy::all().iter().map(|&s| CompileJob::new(program.clone(), s)).collect()
}

#[test]
fn store_warmed_compiles_are_bit_identical_to_cold_across_strategies() {
    use fastsc::store::ArtifactStore;

    let path = store_test_path("warm");
    let store = Arc::new(ArtifactStore::open(&path).expect("opens"));
    let program = Benchmark::Xeb(9, 5).build(42);

    // Cold process: attached store, every strategy compiled once, drain
    // flushes statics + SMT memo + all five schedules to disk.
    let cold = CompileService::new(RoundRobin::new());
    cold.add_shard_with_store(Device::grid(3, 3, 7), CompilerConfig::default(), &store)
        .expect("adds");
    let cold_replies = cold.compile_batch(strategy_jobs(&program));
    cold.drain_shard(0);
    assert!(store.stats().schedules >= 5, "drain persists every strategy's schedule");

    // Warm process: a fresh service hydrated from the same store. Every
    // strategy must be served from the pre-warmed cache, bit-identical
    // to both the cold run and a fresh sequential compile.
    let warm = CompileService::new(RoundRobin::new());
    warm.add_shard_with_store(Device::grid(3, 3, 7), CompilerConfig::default(), &store)
        .expect("adds");
    let warm_replies = warm.compile_batch(strategy_jobs(&program));
    for ((strategy, c), w) in Strategy::all().iter().zip(&cold_replies).zip(&warm_replies) {
        let c = c.as_ref().expect("cold compiles");
        let w = w.as_ref().expect("warm compiles");
        assert!(w.cache_hit, "{strategy}: not served from the store-warmed cache");
        assert_eq!(
            c.compiled.schedule, w.compiled.schedule,
            "{strategy}: store-warmed schedule diverged from the cold compile"
        );
        let fresh = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
            .compile(&program, *strategy)
            .expect("fresh compiles");
        assert_eq!(
            fresh.schedule, w.compiled.schedule,
            "{strategy}: store-warmed schedule diverged from a fresh sequential compile"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn peer_imported_fleets_compile_bit_identically_across_strategies() {
    // Fleet pre-warming without shared disk: a donor fleet exports its
    // artifacts, a joining fleet imports them and must serve the same
    // bits from its pre-warmed cache for every strategy.
    let program = Benchmark::Xeb(9, 5).build(42);
    let donor = CompileService::new(RoundRobin::new());
    donor.add_shard(Device::grid(3, 3, 7), CompilerConfig::default()).expect("adds");
    let donor_replies = donor.compile_batch(strategy_jobs(&program));
    let bundle = donor.export_artifacts();

    let peer = CompileService::new(RoundRobin::new());
    peer.add_shard(Device::grid(3, 3, 7), CompilerConfig::default()).expect("adds");
    let report = peer.import_artifacts(&bundle);
    assert_eq!(report.schedules, 5, "every strategy's schedule is adopted: {report:?}");

    let peer_replies = peer.compile_batch(strategy_jobs(&program));
    for ((strategy, d), p) in Strategy::all().iter().zip(&donor_replies).zip(&peer_replies) {
        let d = d.as_ref().expect("donor compiles");
        let p = p.as_ref().expect("peer compiles");
        assert!(p.cache_hit, "{strategy}: not served from the imported cache");
        assert_eq!(
            d.compiled.schedule, p.compiled.schedule,
            "{strategy}: peer-imported schedule diverged from the donor"
        );
    }
}

#[test]
fn corrupted_or_alien_stores_fall_back_to_bit_identical_cold_compiles() {
    use fastsc::store::ArtifactStore;

    let path = store_test_path("corrupt");
    let program = Benchmark::Xeb(9, 5).build(42);
    {
        let store = Arc::new(ArtifactStore::open(&path).expect("opens"));
        let service = CompileService::new(RoundRobin::new());
        service
            .add_shard_with_store(Device::grid(3, 3, 7), CompilerConfig::default(), &store)
            .expect("adds");
        service.compile_batch(strategy_jobs(&program));
        service.drain_shard(0);
    }

    // Damage the file three ways; each warm start must still produce
    // schedules bit-identical to fresh sequential compiles — recovered
    // artifacts verify, everything else is recompiled cold.
    let pristine = std::fs::read(&path).expect("reads");
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    let truncated = pristine[..pristine.len() - 7].to_vec();
    let mut alien_version = pristine.clone();
    alien_version[11] = 0x7F; // unknown format version => read-only empty

    for (name, bytes) in
        [("flipped", flipped), ("truncated", truncated), ("alien-version", alien_version)]
    {
        std::fs::write(&path, &bytes).expect("writes damage");
        let store = Arc::new(ArtifactStore::open(&path).expect("open never fails"));
        let service = CompileService::new(RoundRobin::new());
        service
            .add_shard_with_store(Device::grid(3, 3, 7), CompilerConfig::default(), &store)
            .expect("warm start survives damage");
        let replies = service.compile_batch(strategy_jobs(&program));
        for (strategy, reply) in Strategy::all().iter().zip(&replies) {
            let reply = reply.as_ref().expect("compiles");
            let fresh = Compiler::new(Device::grid(3, 3, 7), CompilerConfig::default())
                .compile(&program, *strategy)
                .expect("fresh compiles");
            assert_eq!(
                fresh.schedule, reply.compiled.schedule,
                "{name}/{strategy}: damaged store changed compiled output"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Partition auto-cap and multi-thread region fan-out.
// ---------------------------------------------------------------------

#[test]
fn partition_auto_cap_matches_its_explicit_equivalent_and_fingerprints_apart() {
    use fastsc::compiler::partition::auto_region_cap;

    // auto() derives the cap from the device: on a 6x6 grid that is
    // max(ceil(36/8), 16) = 16, so the schedule must equal an explicit
    // cap-16 compile bit for bit...
    let program = Benchmark::Xeb(36, 4).build(7);
    let auto = Compiler::new(Device::grid(6, 6, 7), CompilerConfig::with_partition_auto())
        .compile(&program, Strategy::ColorDynamic)
        .expect("auto-cap compiles");
    assert_eq!(auto_region_cap(36), 16);
    let explicit = Compiler::new(Device::grid(6, 6, 7), CompilerConfig::with_partition(16))
        .compile(&program, Strategy::ColorDynamic)
        .expect("explicit-cap compiles");
    assert_eq!(
        auto.schedule, explicit.schedule,
        "auto cap resolved differently from its explicit equivalent"
    );
    // ...while the config fingerprints stay distinct: "auto" means "cap
    // follows the device", which is a different cache key than any
    // pinned cap.
    assert_ne!(
        CompilerConfig::with_partition_auto().fingerprint(),
        CompilerConfig::with_partition(16).fingerprint(),
        "auto and explicit caps must not share schedule-cache keys"
    );
    // And reproducibly: a second auto-cap compile is bit-identical.
    let again = Compiler::new(Device::grid(6, 6, 7), CompilerConfig::with_partition_auto())
        .compile(&program, Strategy::ColorDynamic)
        .expect("auto-cap recompiles");
    assert_eq!(auto.schedule, again.schedule, "auto-cap compile is not reproducible");
}

#[test]
fn multi_thread_region_fanout_matches_single_thread_bit_for_bit() {
    // The partition engine fans out over regions on multi-thread rayon
    // pools and runs inline on 1-thread pools; both paths must produce
    // identical bits for every strategy.
    let program = Benchmark::Xeb(16, 5).build(7);
    let compile = || {
        Compiler::new(Device::grid(4, 4, 7), CompilerConfig::with_partition(8))
            .compile(&program, Strategy::ColorDynamic)
            .expect("compiles")
    };
    let serial_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
    let parallel_pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
    let serial = serial_pool.install(compile);
    let parallel = parallel_pool.install(compile);
    assert_eq!(
        serial.schedule, parallel.schedule,
        "region fan-out changed compiled output across pool sizes"
    );
    // compile_time is wall-clock; everything else in the stats must
    // agree exactly.
    assert_eq!(
        (serial.stats.lowered_gate_count, serial.stats.smt_calls, serial.stats.deferred_gates),
        (
            parallel.stats.lowered_gate_count,
            parallel.stats.smt_calls,
            parallel.stats.deferred_gates
        ),
        "stats diverged across pool sizes"
    );
}

//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored because
//! this workspace builds without network access to a registry.
//!
//! Implemented surface (what the FastSC test suites use):
//!
//! * the [`proptest!`] macro, including `#![proptest_config(..)]`,
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies (`0..n`, `-3.0f64..3.0`), tuple strategies,
//! * [`prelude::any`] for primitives, [`collection::vec`],
//!   [`sample::select`] and [`sample::subsequence`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: generation is deterministic (a fixed base
//! seed mixed with the case index — failures reproduce exactly on rerun)
//! and there is **no shrinking**; a failing case reports the generated
//! inputs via `Debug` instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case driving: configuration, RNG, and failure type.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Subset of upstream's `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives the cases of one property.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic per-case RNG: fixed base seed mixed with the
        /// case index, so failures reproduce exactly.
        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(0xFA57_5C00 ^ ((case as u64) << 32 | case as u64))
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: a strategy is
    /// simply a deterministic function of the case RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: std::rc::Rc::new(self) }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (upstream's `BoxedStrategy`).
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: self.inner.clone() }
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Marker for types with a canonical [`any`](crate::arbitrary::any)
    /// strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    arbitrary_prim!(bool, u8, u16, u32, u64, usize, i32, i64, f32, f64);

    /// Strategy generating unconstrained values of `T` — see
    /// [`any`](crate::arbitrary::any).
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn any_strategy<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::{Any, Arbitrary};

    /// Strategy generating any value of `T` (primitives only here).
    pub fn any<T: Arbitrary>() -> Any<T> {
        crate::strategy::any_strategy::<T>()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A number-of-elements range (upstream's `SizeRange`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi_inclusive: hi }
        }
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, 0..16)` — a `Vec` with a random length in the range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S::Value: Debug,
    {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    //! Strategies that sample from explicit collections.

    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy choosing one element of a fixed vector.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }

    /// Picks one element of `options` uniformly.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty vector");
        Select { options }
    }

    /// Strategy choosing an order-preserving subsequence of a fixed vector.
    #[derive(Clone, Debug)]
    pub struct Subsequence<T> {
        options: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone + Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let k = self.size.pick(rng).min(self.options.len());
            // Floyd-style distinct index sampling, then order restore.
            let n = self.options.len();
            let mut picked: Vec<usize> = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = rng.gen_range(0..=j);
                if picked.contains(&t) {
                    picked.push(j);
                } else {
                    picked.push(t);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.options[i].clone()).collect()
        }
    }

    /// Picks a uniform-length, order-preserving subsequence of `options`.
    pub fn subsequence<T: Clone + Debug>(
        options: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence { options, size: size.into() }
    }
}

pub mod prelude {
    //! Everything the `proptest!` suites import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let runner = $crate::test_runner::TestRunner::new(config);
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest property '{}' failed at case {}: {}",
                        stringify!($name), case, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Like `assert!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Like `assert_ne!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} != {} (both: {:?})",
                    stringify!($left), stringify!($right), l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} != {} (both: {:?}): {}",
                    stringify!($left), stringify!($right), l, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u8..4, 0usize..5), 0..8)) {
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!(b < 5);
            }
        }

        #[test]
        fn flat_map_scales(n in 2usize..6, pair in (2usize..6).prop_flat_map(|n| (0..n, Just(n)))) {
            prop_assert!(n >= 2);
            let (k, m) = pair;
            prop_assert!(k < m);
        }

        #[test]
        fn subsequence_preserves_order(
            sub in crate::sample::subsequence((0..20usize).collect::<Vec<_>>(), 0..=20usize)
        ) {
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn select_picks_member(x in crate::sample::select(vec![2usize, 3, 5, 7])) {
            prop_assert!([2usize, 3, 5, 7].contains(&x));
        }
    }
}

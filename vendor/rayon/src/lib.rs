//! Offline, API-compatible subset of [`rayon`](https://crates.io/crates/rayon),
//! vendored because this workspace builds without network access to a
//! registry.
//!
//! Implemented surface — what `fastsc_core::batch` uses:
//!
//! * `vec.into_par_iter()` / `slice.par_iter()`,
//! * [`iter::ParallelIterator::map`] and `collect::<Vec<_>>()`,
//! * [`current_num_threads`] and the `RAYON_NUM_THREADS` override.
//!
//! Execution model: the terminal operation materializes the source items,
//! splits them into contiguous index chunks, and runs each chunk on a
//! `std::thread::scope` thread. Ordering is preserved exactly (chunk `i`
//! lands before chunk `i + 1`), so for pure closures the output is
//! bit-identical to a sequential run — a property the batch-compiler
//! tests assert.

#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Thread cap installed by [`ThreadPool::install`] on this thread.
    static INSTALLED_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads terminal operations will use.
///
/// An installed [`ThreadPool`] cap wins, then `RAYON_NUM_THREADS` (like
/// upstream), then [`std::thread::available_parallelism`]; never less
/// than 1.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_CAP.with(Cell::get) {
        return n;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder` — only the thread count
/// is configurable.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count for pools built from this builder.
    pub fn num_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "thread pool needs at least one thread");
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Infallible here; `Result` mirrors upstream.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A scoped thread-count cap mirroring `rayon::ThreadPool`.
///
/// Unlike upstream there are no persistent workers; [`install`]
/// (ThreadPool::install) caps how many scoped threads terminal
/// operations spawn while the closure runs on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread cap in effect (on the calling
    /// thread; the cap is restored afterwards, even on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_CAP.with(|cap| cap.set(self.0));
            }
        }
        let previous = INSTALLED_CAP.with(|cap| cap.replace(self.num_threads));
        let _restore = Restore(previous);
        f()
    }

    /// The cap this pool installs, resolving defaults the same way as
    /// [`current_num_threads`].
    pub fn current_num_threads(&self) -> usize {
        match self.num_threads {
            Some(n) => n,
            None => current_num_threads(),
        }
    }
}

/// Runs `f` over `items` on up to [`current_num_threads`] scoped threads,
/// preserving input order in the output.
fn parallel_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }

    let f = &f;
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mapped) => out.push(mapped),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

pub mod iter {
    //! Parallel iterator traits and adapters.

    use super::parallel_map;

    /// A data-parallel computation producing ordered items.
    pub trait ParallelIterator: Sized + Send {
        /// The element type.
        type Item: Send;

        /// Materializes all items **in order** (terminal, runs the
        /// parallel stages accumulated so far).
        fn drive(self) -> Vec<Self::Item>;

        /// Maps each item through `f` in parallel.
        fn map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Collects the items, preserving input order.
        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            C::from(self.drive())
        }

        /// Number of items, when cheaply known (sources report it).
        fn opt_len(&self) -> Option<usize> {
            None
        }
    }

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The produced iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Types whose references iterate in parallel (`slice.par_iter()`).
    pub trait IntoParallelRefIterator<'a> {
        /// The element type (a reference).
        type Item: Send + 'a;
        /// The produced iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Iterates over `&self` in parallel.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Source: an owned `Vec`.
    pub struct VecIter<T: Send> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
        fn opt_len(&self) -> Option<usize> {
            Some(self.items.len())
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    /// Source: a borrowed slice.
    pub struct SliceIter<'a, T: Sync> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            self.items.iter().collect()
        }
        fn opt_len(&self) -> Option<usize> {
            Some(self.items.len())
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { items: self.as_slice() }
        }
    }

    /// Range source (`(0..n).into_par_iter()`).
    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = VecIter<usize>;
        fn into_par_iter(self) -> VecIter<usize> {
            VecIter { items: self.collect() }
        }
    }

    /// Adapter produced by [`ParallelIterator::map`].
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, U, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        U: Send,
        F: Fn(I::Item) -> U + Sync + Send,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            parallel_map(self.base.drive(), self.f)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1u64, 2, 3, 4, 5];
        let sq: Vec<u64> = v.par_iter().map(|&x| x * x).collect();
        assert_eq!(sq, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn matches_sequential_for_pure_functions() {
        let inputs: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = inputs.iter().map(|&x| x.wrapping_mul(0x9E3779B9)).collect();
        let par: Vec<u64> =
            inputs.into_par_iter().map(|x| x.wrapping_mul(0x9E3779B9)).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn installed_pool_caps_thread_count() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let (inside, result) = pool.install(|| {
            let inside = crate::current_num_threads();
            let v: Vec<usize> = (0..100).into_par_iter().map(|x| x + 1).collect();
            (inside, v)
        });
        assert_eq!(inside, 2);
        assert_eq!(result, (1..101).collect::<Vec<_>>());
        // The cap is restored after install returns.
        let _ = crate::current_num_threads();
        assert!(crate::INSTALLED_CAP.with(std::cell::Cell::get).is_none());
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }
}

//! Offline, API-compatible subset of [`rayon`](https://crates.io/crates/rayon),
//! vendored because this workspace builds without network access to a
//! registry.
//!
//! Implemented surface — what `fastsc_core::batch` uses:
//!
//! * `vec.into_par_iter()` / `slice.par_iter()`,
//! * [`iter::ParallelIterator::map`] and `collect::<Vec<_>>()`,
//! * [`current_num_threads`] and the `RAYON_NUM_THREADS` override.
//!
//! Execution model: the terminal operation materializes the source items,
//! tags each with its input index, and deals them into **one deque per
//! worker** (contiguous runs, for locality). Workers drain their own
//! deque from the front and, when it runs dry, **steal from the back of
//! another worker's deque** — so a single expensive item (one dominating
//! compile job) occupies one worker while the rest keep draining the
//! remaining items, instead of idling behind a fixed contiguous chunk
//! split. Workers are a **persistent pool** (one process-wide set of
//! channel-fed threads, spawned once on first use — like upstream's
//! global registry — instead of `std::thread::scope` spawns per call,
//! whose setup/teardown dominated many-small-batch workloads). Every
//! result carries its item index and is reassembled in input order, so
//! for pure closures the output is bit-identical to a sequential run no
//! matter which worker computed which item — a property the
//! batch-compiler tests assert.
//!
//! Like upstream rayon, the dispatch path needs one `unsafe` lifetime
//! erasure to hand borrowing closures to the persistent workers; see
//! [`pool`] for the safety argument (the caller blocks until every
//! submitted worker task has finished, so no borrow outlives the call).

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;

thread_local! {
    /// Thread cap installed by [`ThreadPool::install`] on this thread.
    static INSTALLED_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads terminal operations will use.
///
/// An installed [`ThreadPool`] cap wins, then `RAYON_NUM_THREADS` (like
/// upstream), then [`std::thread::available_parallelism`]; never less
/// than 1.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_CAP.with(Cell::get) {
        return n;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder` — only the thread count
/// is configurable.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count for pools built from this builder.
    pub fn num_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "thread pool needs at least one thread");
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Infallible here; `Result` mirrors upstream.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A scoped thread-count cap mirroring `rayon::ThreadPool`.
///
/// Worker threads themselves are persistent and process-wide (see
/// [`pool`]); a `ThreadPool` value is a *cap*: [`install`]
/// (ThreadPool::install) bounds how many chunks terminal operations
/// split work into (and hence how many workers can run it concurrently)
/// while the closure runs on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread cap in effect (on the calling
    /// thread; the cap is restored afterwards, even on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_CAP.with(|cap| cap.set(self.0));
            }
        }
        let previous = INSTALLED_CAP.with(|cap| cap.replace(self.num_threads));
        let _restore = Restore(previous);
        f()
    }

    /// The cap this pool installs, resolving defaults the same way as
    /// [`current_num_threads`].
    pub fn current_num_threads(&self) -> usize {
        match self.num_threads {
            Some(n) => n,
            None => current_num_threads(),
        }
    }
}

/// One worker's share of a work-stealing dispatch: index-tagged items,
/// drained by the owner from the front and stolen from the back.
type Deque<T> = std::sync::Mutex<std::collections::VecDeque<(usize, T)>>;

/// Claims the next item for `own`: the front of its own deque, else the
/// back of the first non-empty victim (scanned in ring order from
/// `own + 1` so contention spreads instead of piling on deque 0). Items
/// are only ever removed, so one full scan finding every deque empty
/// means the dispatch is drained and the worker can retire.
fn claim_item<T>(deques: &[Deque<T>], own: usize) -> Option<(usize, T)> {
    fn lock<T>(
        d: &Deque<T>,
    ) -> std::sync::MutexGuard<'_, std::collections::VecDeque<(usize, T)>> {
        d.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
    if let Some(item) = lock(&deques[own]).pop_front() {
        return Some(item);
    }
    for offset in 1..deques.len() {
        if let Some(item) = lock(&deques[(own + offset) % deques.len()]).pop_back() {
            return Some(item);
        }
    }
    None
}

/// Runs `f` over `items` on up to [`current_num_threads`] persistent pool
/// workers with per-item work stealing, preserving input order in the
/// output.
fn parallel_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let workers = current_num_threads().min(items.len());
    // Nested data parallelism runs inline: a worker blocking on items
    // that can only run on (other, possibly busy) workers could
    // otherwise deadlock a small pool.
    if workers <= 1 || items.len() <= 1 || pool::on_worker_thread() {
        return items.into_iter().map(f).collect();
    }

    let total = items.len();
    // Deal contiguous index-tagged runs into one deque per worker: with
    // evenly priced items nobody steals and locality matches the old
    // chunking; with skewed items idle workers steal single items from
    // the back of busy workers' deques.
    let run = total.div_ceil(workers);
    let mut deques: Vec<Deque<T>> = Vec::with_capacity(workers);
    let mut tagged = items.into_iter().enumerate();
    for _ in 0..workers {
        deques.push(std::sync::Mutex::new(tagged.by_ref().take(run).collect()));
    }

    let (report, results) = std::sync::mpsc::channel();
    let f = &f;
    let deques = &deques;
    for worker in 0..workers {
        let report = report.clone();
        pool::submit_scoped(Box::new(move || {
            while let Some((index, item)) = claim_item(deques, worker) {
                let mapped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
                // A send can only fail after the caller stopped
                // listening, which it provably never does before the
                // channel disconnects.
                let _ = report.send((index, mapped));
            }
            // The worker's `report` clone drops HERE, after its last
            // possible use of `f`/`deques` — channel disconnection is
            // how the caller knows every borrow is dead.
        }));
    }
    drop(report);

    // Drain to disconnection, not just to `total` results — the safety
    // contract of `submit_scoped` (no borrow of `f` or the deques
    // outlives this call) needs every worker *task* finished, not merely
    // every item reported. Panics are deferred until the dispatch is
    // fully drained, then replayed in item order.
    let mut slots: Vec<Option<std::thread::Result<U>>> = Vec::new();
    slots.resize_with(total, || None);
    let mut received = 0usize;
    while let Ok((index, mapped)) = results.recv() {
        debug_assert!(slots[index].is_none(), "item {index} reported twice");
        slots[index] = Some(mapped);
        received += 1;
    }
    assert_eq!(received, total, "every item reports exactly once");
    let mut out: Vec<U> = Vec::with_capacity(total);
    for slot in slots {
        match slot.expect("every item reports exactly once") {
            Ok(mapped) => out.push(mapped),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

pub mod pool {
    //! The persistent worker pool backing every terminal operation.
    //!
    //! Workers are spawned once per process (first parallel call), sized
    //! by [`available_parallelism`](std::thread::available_parallelism),
    //! and fed through an mpsc injector channel; results return to the
    //! submitting call through a per-call channel tagged with item
    //! indices, so ordering never depends on worker scheduling or on
    //! which worker stole which item.

    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};

    /// An erased, heap-allocated unit of pool work.
    type Task = Box<dyn FnOnce() + Send + 'static>;

    thread_local! {
        static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// Whether the current thread is one of the pool's workers.
    pub fn on_worker_thread() -> bool {
        IS_WORKER.with(std::cell::Cell::get)
    }

    /// Number of persistent workers backing this process's pool.
    pub fn worker_count() -> usize {
        global().workers
    }

    struct WorkerPool {
        injector: Mutex<Sender<Task>>,
        workers: usize,
    }

    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers =
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1);
            let (injector, feed) = channel::<Task>();
            let feed = Arc::new(Mutex::new(feed));
            for index in 0..workers {
                let feed = Arc::clone(&feed);
                std::thread::Builder::new()
                    .name(format!("rayon-worker-{index}"))
                    .spawn(move || worker_loop(&feed))
                    .expect("spawning a pool worker thread");
            }
            WorkerPool { injector: Mutex::new(injector), workers }
        })
    }

    fn worker_loop(feed: &Mutex<Receiver<Task>>) {
        IS_WORKER.with(|w| w.set(true));
        loop {
            // Holding the lock while blocked on recv is fine: the holder
            // wakes with a task, releases the lock to run it, and the
            // next idle worker takes over the receiver.
            let task = {
                let feed = feed.lock().unwrap_or_else(PoisonError::into_inner);
                feed.recv()
            };
            match task {
                Ok(task) => task(),
                // All senders dropped: the process is shutting down.
                Err(_) => return,
            }
        }
    }

    /// Submits a task that may borrow from the submitting stack frame.
    ///
    /// # Safety contract (enforced by the single caller, `parallel_map`)
    ///
    /// The persistent workers require `'static` tasks, but map closures
    /// borrow the caller's closure environment — exactly upstream
    /// rayon's situation, solved the same way: the lifetime is erased,
    /// and the submitting call **must not return (or unwind) before the
    /// task has finished running**. `parallel_map` upholds this by
    /// draining its result channel to disconnection: each worker task
    /// holds a clone of the sender that only drops when the task's
    /// closure has fully completed (item panics included, via
    /// `catch_unwind`), so disconnection proves every borrow is dead.
    pub(crate) fn submit_scoped(task: Box<dyn FnOnce() + Send + '_>) {
        // SAFETY: only the lifetime is transmuted (same vtable, same
        // layout); the contract above guarantees the borrow is live for
        // as long as the task can run.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(task)
        };
        let injector = global().injector.lock().unwrap_or_else(PoisonError::into_inner);
        injector.send(task).expect("worker pool never drops its receiver");
    }
}

pub mod iter {
    //! Parallel iterator traits and adapters.

    use super::parallel_map;

    /// A data-parallel computation producing ordered items.
    pub trait ParallelIterator: Sized + Send {
        /// The element type.
        type Item: Send;

        /// Materializes all items **in order** (terminal, runs the
        /// parallel stages accumulated so far).
        fn drive(self) -> Vec<Self::Item>;

        /// Maps each item through `f` in parallel.
        fn map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Collects the items, preserving input order.
        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            C::from(self.drive())
        }

        /// Number of items, when cheaply known (sources report it).
        fn opt_len(&self) -> Option<usize> {
            None
        }
    }

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The produced iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Types whose references iterate in parallel (`slice.par_iter()`).
    pub trait IntoParallelRefIterator<'a> {
        /// The element type (a reference).
        type Item: Send + 'a;
        /// The produced iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Iterates over `&self` in parallel.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Source: an owned `Vec`.
    pub struct VecIter<T: Send> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
        fn opt_len(&self) -> Option<usize> {
            Some(self.items.len())
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    /// Source: a borrowed slice.
    pub struct SliceIter<'a, T: Sync> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            self.items.iter().collect()
        }
        fn opt_len(&self) -> Option<usize> {
            Some(self.items.len())
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { items: self.as_slice() }
        }
    }

    /// Range source (`(0..n).into_par_iter()`).
    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = VecIter<usize>;
        fn into_par_iter(self) -> VecIter<usize> {
            VecIter { items: self.collect() }
        }
    }

    /// Adapter produced by [`ParallelIterator::map`].
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, U, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        U: Send,
        F: Fn(I::Item) -> U + Sync + Send,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            parallel_map(self.base.drive(), self.f)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1u64, 2, 3, 4, 5];
        let sq: Vec<u64> = v.par_iter().map(|&x| x * x).collect();
        assert_eq!(sq, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn matches_sequential_for_pure_functions() {
        let inputs: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = inputs.iter().map(|&x| x.wrapping_mul(0x9E3779B9)).collect();
        let par: Vec<u64> =
            inputs.into_par_iter().map(|x| x.wrapping_mul(0x9E3779B9)).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn installed_pool_caps_thread_count() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let (inside, result) = pool.install(|| {
            let inside = crate::current_num_threads();
            let v: Vec<usize> = (0..100).into_par_iter().map(|x| x + 1).collect();
            (inside, v)
        });
        assert_eq!(inside, 2);
        assert_eq!(result, (1..101).collect::<Vec<_>>());
        // The cap is restored after install returns.
        let _ = crate::current_num_threads();
        assert!(crate::INSTALLED_CAP.with(std::cell::Cell::get).is_none());
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Two terminal operations in a row run on the same persistent
        // workers (no per-call spawning): the worker count is stable and
        // both calls complete with ordered results.
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            let first: Vec<usize> = (0..64).into_par_iter().map(|x| x * 3).collect();
            let workers_before = crate::pool::worker_count();
            let second: Vec<usize> = (0..64).into_par_iter().map(|x| x * 3).collect();
            assert_eq!(crate::pool::worker_count(), workers_before);
            assert_eq!(first, second);
        });
    }

    #[test]
    fn borrowed_environment_survives_dispatch() {
        // Map closures borrow from the caller's stack — the pool must
        // finish every chunk before the call returns.
        let offsets: Vec<u64> = (0..17).collect();
        let base = 1000u64;
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<u64> = pool.install(|| offsets.par_iter().map(|&x| x + base).collect());
        assert_eq!(out, (1000..1017).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_one_chunk_propagates_after_all_chunks_finish() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0..100usize)
                    .into_par_iter()
                    .map(|x| if x == 37 { panic!("chunk boom") } else { x })
                    .collect::<Vec<_>>()
            })
        });
        let payload = result.expect_err("the panic must propagate to the caller");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "chunk boom");
        // The pool survives the panic: the next operation still works.
        let ok: Vec<usize> = pool.install(|| (0..10).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(ok, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_costs_preserve_order() {
        // One dominating item (index 0) plus many cheap ones: stealing
        // moves the cheap items to other workers, and index-tagged
        // reassembly still returns them in input order.
        fn busy(rounds: u64) -> u64 {
            let mut acc = 1u64;
            for i in 0..rounds {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
            }
            std::hint::black_box(acc)
        }
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let costs: Vec<u64> =
            std::iter::once(2_000_000u64).chain((1..64).map(|_| 10)).collect();
        let out: Vec<(usize, u64)> = pool.install(|| {
            costs
                .iter()
                .copied()
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(i, c)| (i, busy(c)))
                .collect()
        });
        assert_eq!(out.len(), 64);
        for (slot, &(index, _)) in out.iter().enumerate() {
            assert_eq!(slot, index, "work stealing broke input-order reassembly");
        }
    }

    #[test]
    fn stealing_distributes_items_beyond_contiguous_runs() {
        // With 2 workers over 8 items, contiguous chunking would pin
        // items 0..4 to the worker that owns item 0. Here item 0 blocks
        // until every other item has finished: under per-item stealing
        // the second worker drains its own run (4..8) and then steals
        // items 3, 2, 1 from the blocked worker's deque, so the first
        // run's items are computed by more than one thread.
        use std::collections::HashMap;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        if crate::pool::worker_count() < 2 {
            return; // stealing needs a second runnable worker
        }
        // Two-way gate pinning the interleaving: item 0 (always claimed
        // first by the worker owning deque 0) announces itself, every
        // other item waits for that announcement, and item 0 only
        // finishes once the other 7 are done — which, with item 0's
        // worker blocked, only stealing can achieve. Waits are bounded so
        // a starved pool degrades to a failed assertion, not a hang.
        let spin_until = |cond: &dyn Fn() -> bool| {
            let start = std::time::Instant::now();
            while !cond() && start.elapsed() < std::time::Duration::from_secs(10) {
                std::thread::yield_now();
            }
        };
        let item0_started = AtomicUsize::new(0);
        let others_done = AtomicUsize::new(0);
        let thread_of: Mutex<HashMap<usize, std::thread::ThreadId>> =
            Mutex::new(HashMap::new());
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            let _: Vec<()> = (0..8usize)
                .into_par_iter()
                .map(|i| {
                    if i == 0 {
                        item0_started.store(1, Ordering::SeqCst);
                        spin_until(&|| others_done.load(Ordering::SeqCst) >= 7);
                    } else {
                        spin_until(&|| item0_started.load(Ordering::SeqCst) == 1);
                    }
                    thread_of.lock().unwrap().insert(i, std::thread::current().id());
                    if i != 0 {
                        others_done.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect();
        });
        assert_eq!(others_done.load(Ordering::SeqCst), 7);
        let thread_of = thread_of.into_inner().unwrap();
        let first_run: std::collections::HashSet<_> = (0..4).map(|i| thread_of[&i]).collect();
        assert!(
            first_run.len() > 1,
            "items 0..4 all ran on one thread — nothing was stolen from the busy worker"
        );
    }

    #[test]
    fn installed_cap_bounds_worker_threads_used() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let out: Vec<usize> = pool.install(|| {
            (0..256usize)
                .into_par_iter()
                .map(|x| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    x
                })
                .collect()
        });
        assert_eq!(out, (0..256).collect::<Vec<_>>());
        assert!(
            seen.lock().unwrap().len() <= 2,
            "a num_threads(2) cap must dispatch at most 2 worker tasks"
        );
    }

    #[test]
    fn panic_in_stolen_item_reports_lowest_index() {
        // Two items panic; the replayed payload must be the lower index
        // regardless of which worker hit which item first.
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0..100usize)
                    .into_par_iter()
                    .map(|x| {
                        if x == 13 || x == 97 {
                            panic!("boom {x}");
                        }
                        x
                    })
                    .collect::<Vec<_>>()
            })
        });
        let payload = result.expect_err("panics must propagate");
        let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(message, "boom 13");
    }

    #[test]
    fn nested_parallelism_runs_inline_without_deadlock() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|x| (0..4usize).into_par_iter().map(|y| x * 4 + y).collect::<Vec<_>>())
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}

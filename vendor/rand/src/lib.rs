//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 surface), vendored because this workspace builds without
//! network access to a registry.
//!
//! Only the pieces the FastSC workspace actually uses are implemented:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded
//!   via SplitMix64 (`seed_from_u64`),
//! * `gen::<T>()` for the primitive types the workspace samples,
//! * `gen_range(..)` over half-open and inclusive integer/float ranges,
//! * `gen_bool(p)`.
//!
//! Determinism is a feature here, not an accident: the same seed always
//! produces the same stream on every platform, which the compiler's
//! reproducibility tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // High bit, like upstream rand (and xoshiro's best-quality bits).
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic, portable).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator.
    ///
    /// The name mirrors `rand::rngs::StdRng`; unlike upstream, the stream
    /// for a given `seed_from_u64` seed is stable forever, which the
    /// workspace's reproducibility tests depend on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(3..9);
            assert!((3..9).contains(&k));
            let v = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&v));
            let w = rng.gen_range(0..=3u8);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

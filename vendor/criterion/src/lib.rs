//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored because this workspace builds without network access to a
//! registry.
//!
//! Implemented surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The statistics are intentionally simple: each benchmark runs a short
//! calibration pass, then `sample_size` timed samples, and reports
//! min / mean / max per-iteration wall time on stdout. Passing `--test`
//! (as `cargo test` does for benches) runs each benchmark exactly once
//! as a smoke check.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("routing", 16)` — function + parameter label.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` `self.iters` times and records the total wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { criterion: self, name, sample_size: None }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_benchmark(&id.label, sample_size, test_mode, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, sample_size, self.criterion.test_mode, |b| f(b, input));
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, sample_size, self.criterion.test_mode, f);
        self
    }

    /// Ends the group (upstream writes reports here; we already printed).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    if test_mode {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("  {label}: ok (test mode)");
        return;
    }

    // Calibration: grow the iteration count until one sample costs
    // >= 2 ms (or a single iteration is already slower than that).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label}: mean {} (min {}, max {}, {} samples x {} iters)",
        format_time(mean),
        format_time(min),
        format_time(max),
        per_iter.len(),
        iters,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

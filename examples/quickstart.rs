//! Quickstart: compile one circuit with every strategy and compare
//! worst-case success rates.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fastsc::compiler::{Compiler, CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::noise::{estimate, NoiseConfig};
use fastsc::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x4 mesh of frequency-tunable transmons with fixed couplers;
    // maximum frequencies are sampled from N(7 GHz, 0.1 GHz).
    let device = Device::grid(4, 4, 2020);
    let compiler = Compiler::new(device, CompilerConfig::default());

    // A 10-cycle cross-entropy-benchmarking circuit: the most parallel,
    // most crosstalk-prone workload of the paper's suite.
    let benchmark = Benchmark::Xeb(16, 10);
    let program = benchmark.build(7);
    println!("benchmark {benchmark}: {} gates before lowering", program.len());
    println!();
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "strategy", "P_success", "xtalk err", "decoh err", "duration", "depth"
    );

    let noise_config = NoiseConfig::default();
    for strategy in Strategy::all() {
        // Baseline G needs tunable-coupler hardware; everyone else runs on
        // the fixed-coupler chip.
        let target = if strategy == Strategy::BaselineG {
            compiler.device().with_coupler(fastsc::device::CouplerKind::tunable(0.0))
        } else {
            compiler.device().clone()
        };
        let c = Compiler::new(target, *compiler.config());
        let compiled = c.compile(&program, strategy)?;
        let report = estimate(c.device(), &compiled.schedule, &noise_config);
        println!(
            "{:<14} {:>10.4} {:>12.4} {:>12.4} {:>9.0}ns {:>10}",
            strategy.label(),
            report.p_success,
            report.crosstalk_error(),
            report.decoherence_error(),
            report.duration_ns,
            report.depth,
        );
    }
    println!();
    println!("ColorDynamic matches the tunable-coupler Baseline G on simpler");
    println!("fixed-coupler hardware, and decisively beats serialization (U).");
    Ok(())
}

//! Fleet-autoscaling demo: an operator loop watches
//! `QueueService::telemetry_feed()` and scales the shard fleet against
//! live queue depth — adding a healthy chip under load, then draining
//! the noisier chip once the burst has passed. Placement is
//! `FidelityAware`, so as soon as the healthier chip joins, critical
//! traffic prefers it.
//!
//! ```console
//! $ cargo run --release --example fleet_autoscale
//! ```

use fastsc::compiler::batch::CompileJob;
use fastsc::compiler::{CompilerConfig, Strategy};
use fastsc::device::{Device, DeviceBuilder};
use fastsc::queue::{Priority, QueueConfig, QueueService, Submission};
use fastsc::service::{CompileService, FidelityAware, ShardState};
use fastsc::workloads::Benchmark;
use std::sync::Arc;
use std::time::Duration;

const TOTAL_JOBS: u64 = 32;
const SCALE_UP_DEPTH: usize = 6;

/// A 3x3 chip with the given coherence times (shorter = noisier = lower
/// `estimated_success`).
fn chip(seed: u64, t1_us: f64, t2_us: f64) -> Device {
    let mut builder = DeviceBuilder::new(fastsc::graph::topology::grid(3, 3));
    builder.seed(seed).coherence(t1_us, t2_us);
    builder.build()
}

fn main() {
    // The fleet starts as a single, mediocre chip.
    let mut service = CompileService::new(FidelityAware::new());
    service
        .register_device(chip(7, 12.0, 9.0), CompilerConfig::default())
        .expect("device frequency plan solves");
    let queue = Arc::new(QueueService::new(
        service,
        QueueConfig { capacity: 16, max_batch: 4, ..QueueConfig::default() },
    ));
    let mut feed = queue.telemetry_feed();

    // A client floods the queue faster than one chip compiles.
    let producer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            let strategies = Strategy::all();
            (0..TOTAL_JOBS)
                .map(|i| {
                    let benchmark = match i % 3 {
                        0 => Benchmark::Xeb(9, 4),
                        1 => Benchmark::Qaoa(7),
                        _ => Benchmark::Bv(4 + (i as usize % 5)),
                    };
                    let job = CompileJob::new(benchmark.build(i), strategies[i as usize % 5]);
                    queue
                        .submit(Submission::new(job).client(1).priority(Priority::Interactive))
                        .expect("block mode always admits")
                })
                .collect::<Vec<_>>()
        })
    };

    // The operator loop: poll the feed, scale against what it reports.
    let mut scaled_up = false;
    loop {
        std::thread::sleep(Duration::from_millis(30));
        let snapshot = feed.poll();
        let shard_line: Vec<String> = snapshot
            .shards
            .iter()
            .map(|view| {
                format!(
                    "shard {} [{:?}] load {} est_success {:.3} ewma {:?}",
                    view.shard,
                    view.state,
                    view.load,
                    view.estimated_success(),
                    view.ewma_compile_latency
                )
            })
            .collect();
        println!(
            "depth {:>2} | inflight {:>2} | +{} done this poll | {}",
            snapshot.stats.depth,
            snapshot.stats.inflight,
            snapshot.delta.completed,
            shard_line.join(" | ")
        );

        // Scale up: sustained depth with the fleet saturated.
        if !scaled_up && snapshot.stats.depth >= SCALE_UP_DEPTH {
            let shard = queue
                .service()
                .add_shard(chip(23, 60.0, 45.0), CompilerConfig::default())
                .expect("device frequency plan solves");
            scaled_up = true;
            println!(
                ">>> depth {} ≥ {}: added healthy shard {} (est_success {:.3} vs {:.3}) — \
                 fidelity-aware routing now prefers it",
                snapshot.stats.depth,
                SCALE_UP_DEPTH,
                shard,
                queue.service().shard_profile(shard).estimated_success,
                queue.service().shard_profile(0).estimated_success,
            );
        }

        if snapshot.stats.completed == TOTAL_JOBS {
            break;
        }
    }

    // The burst is over: drain the noisier chip while the healthy one
    // keeps serving. Drain blocks until the shard is idle — nothing
    // admitted is ever lost.
    if scaled_up {
        println!(">>> queue idle: draining noisy shard 0 (fleet keeps serving on shard 1)");
        queue.service().drain_shard(0);
        println!(
            ">>> shard 0 is {:?}; its cache counters stay in the fleet totals",
            queue.service().shard_state(0)
        );
        assert_eq!(queue.service().shard_state(0), ShardState::Draining);
    }

    // Every admitted job resolved exactly once, scaling notwithstanding.
    let handles = producer.join().expect("producer finishes");
    let mut per_shard = [0u64; 2];
    for handle in &handles {
        per_shard[handle.wait().expect("compiles").shard] += 1;
    }
    let stats = queue.stats();
    println!(
        "\n{} jobs: {} on noisy shard 0, {} on healthy shard 1 (added mid-burst)",
        TOTAL_JOBS, per_shard[0], per_shard[1]
    );
    println!(
        "admitted {} completed {} | cache {} hits / {} misses",
        stats.admitted, stats.completed, stats.cache.hits, stats.cache.misses
    );
    let final_view = feed.poll();
    for view in final_view.shards {
        println!(
            "final: shard {} [{:?}] est_success {:.3} cache hit rate {:.0}%",
            view.shard,
            view.state,
            view.estimated_success(),
            100.0 * view.cache_hit_rate()
        );
    }
}

//! QAOA MAX-CUT on an Erdős–Rényi problem graph: routing, color budgets,
//! and the parallelism/fidelity trade-off on a 3x3 device.
//!
//! ```bash
//! cargo run --release --example qaoa_maxcut
//! ```

use fastsc::compiler::{Compiler, CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::noise::{estimate, NoiseConfig};
use fastsc::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::grid(3, 3, 11);
    let program = workloads::qaoa(9, 11);
    println!(
        "QAOA MAX-CUT on G(9, 0.5): {} program gates ({} two-qubit)",
        program.len(),
        program.two_qubit_count()
    );

    // Routing: the random problem graph is denser than the mesh, so the
    // compiler inserts SWAP chains.
    let compiler = Compiler::new(device.clone(), CompilerConfig::default());
    let compiled = compiler.compile(&program, Strategy::ColorDynamic)?;
    println!(
        "router inserted {} SWAPs; lowered to {} native gates",
        compiled.stats.swaps_inserted, compiled.stats.lowered_gate_count
    );
    println!();

    // Sweep the interaction-frequency color budget (paper Fig. 11): more
    // colors = more parallelism but tighter spectral packing.
    println!(
        "{:<12} {:>10} {:>8} {:>12} {:>12}",
        "max colors", "P_success", "depth", "xtalk err", "decoh err"
    );
    let noise_config = NoiseConfig::default();
    for budget in 1..=4 {
        let c = Compiler::new(device.clone(), CompilerConfig::with_max_colors(budget));
        let compiled = c.compile(&program, Strategy::ColorDynamic)?;
        let report = estimate(c.device(), &compiled.schedule, &noise_config);
        println!(
            "{:<12} {:>10.4} {:>8} {:>12.5} {:>12.5}",
            budget,
            report.p_success,
            report.depth,
            report.crosstalk_error(),
            report.decoherence_error(),
        );
    }
    println!();
    println!("The sweet spot sits at 1-2 colors for most NISQ workloads");
    println!("(paper Fig. 11): two frequency sweet spots per qubit suffice.");
    Ok(())
}

//! XEB as a crosstalk probe: validate the analytic success-rate heuristic
//! against Monte-Carlo noisy simulation, then inspect a compiled cycle's
//! frequency assignment (the paper's Fig. 14 view).
//!
//! ```bash
//! cargo run --release --example xeb_calibration
//! ```

use fastsc::compiler::{Compiler, CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::noise::{estimate, NoiseConfig};
use fastsc::sim::simulate_success;
use fastsc::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small enough to state-vector simulate, parallel enough to crosstalk.
    let device = Device::grid(3, 3, 5);
    let compiler = Compiler::new(device, CompilerConfig::default());
    let program = Benchmark::Xeb(9, 5).build(5);

    println!("validating the Eq. 4 heuristic against 100-trajectory simulation");
    println!();
    println!("{:<14} {:>12} {:>12} {:>10}", "strategy", "heuristic", "simulated", "+/-");
    for strategy in [Strategy::ColorDynamic, Strategy::BaselineS, Strategy::BaselineU] {
        let compiled = compiler.compile(&program, strategy)?;
        let heuristic =
            estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default());
        let sim = simulate_success(compiler.device(), &compiled.schedule, 100, 99);
        println!(
            "{:<14} {:>12.4} {:>12.4} {:>10.4}",
            strategy.label(),
            heuristic.p_success,
            sim.success,
            sim.std_error,
        );
    }
    println!();

    // Fig. 14-style dump: the frequency map of the busiest cycle.
    let compiled = compiler.compile(&program, Strategy::ColorDynamic)?;
    let busiest = compiled
        .schedule
        .cycles()
        .iter()
        .max_by_key(|c| c.gates.iter().filter(|g| g.instruction.gate.is_two_qubit()).count())
        .expect("non-empty schedule");
    println!("busiest cycle frequency assignment (GHz), 3x3 mesh:");
    for r in 0..3 {
        let row: Vec<String> =
            (0..3).map(|c| format!("{:5.3}", busiest.frequencies[r * 3 + c])).collect();
        println!("  {}", row.join("  "));
    }
    println!("two-qubit gates this cycle:");
    for g in &busiest.gates {
        if let Some(f) = g.interaction_freq {
            println!("  {} @ {:.3} GHz", g.instruction, f);
        }
    }
    Ok(())
}

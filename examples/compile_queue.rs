//! Compile-queue demo: two clients at different priorities flood a
//! two-device fleet through the async front end; the main thread
//! streams completions as micro-batches finish and prints the final
//! queue statistics.
//!
//! ```console
//! $ cargo run --release --example compile_queue
//! ```

use fastsc::compiler::batch::CompileJob;
use fastsc::compiler::{CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::queue::{Backpressure, Priority, QueueConfig, QueueService, Submission};
use fastsc::service::{CapacityAware, CompileService};
use fastsc::workloads::Benchmark;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A two-device fleet behind capacity-aware placement: programs wider
    // than a shard never route to it.
    let mut service = CompileService::new(CapacityAware::new());
    for device in [Device::grid(3, 3, 7), Device::grid(4, 4, 23)] {
        let shard = service
            .register_device(device, CompilerConfig::default())
            .expect("device frequency plan solves");
        println!(
            "registered shard {shard}: {} qubits (seed {})",
            service.shard_device(shard).n_qubits(),
            service.shard_device(shard).seed()
        );
    }

    // A small queue with ShedOldest backpressure: when both clients
    // flood faster than the fleet compiles, the oldest speculative work
    // is sacrificed for fresher, more important jobs.
    let queue = Arc::new(QueueService::new(
        service,
        QueueConfig {
            capacity: 24,
            backpressure: Backpressure::ShedOldest,
            max_batch: 8,
            ..QueueConfig::default()
        },
    ));
    let mut completions = queue.subscribe_all();

    // Client 1: a user iterating interactively — every job matters.
    // Client 2: a speculative calibration sweep — nice to have.
    let producers: Vec<_> = [(1u64, Priority::Interactive), (2u64, Priority::Speculative)]
        .into_iter()
        .map(|(client, priority)| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let strategies = Strategy::all();
                let mut submitted = 0;
                for i in 0..16u64 {
                    let benchmark = match i % 3 {
                        0 => Benchmark::Xeb(9, 6),
                        1 => Benchmark::Qaoa(8),
                        _ => Benchmark::Bv(6 + (i as usize % 8)),
                    };
                    let job = CompileJob::new(
                        benchmark.build(client * 100 + i),
                        strategies[i as usize % 5],
                    );
                    let submission = Submission::new(job)
                        .client(client)
                        .priority(priority)
                        .deadline_in(Duration::from_secs(30));
                    if queue.submit(submission).is_ok() {
                        submitted += 1;
                    }
                }
                println!("client {client} ({priority}) submitted {submitted} jobs");
                submitted
            })
        })
        .collect();
    let total: usize = producers.into_iter().map(|p| p.join().expect("producer runs")).sum();

    // Stream results in completion order — they arrive per micro-batch,
    // not all at once when everything is done.
    let mut outcomes = [0usize; 3]; // compiled / shed / expired
    for n in 0..total {
        let (id, result) =
            completions.next_timeout(Duration::from_secs(120)).expect("fleet drains the queue");
        match result {
            Ok(reply) => {
                outcomes[0] += 1;
                if n < 8 || n + 2 > total {
                    println!(
                        "  {id}: shard {} {}",
                        reply.shard,
                        if reply.cache_hit { "(served from cache)" } else { "(compiled)" }
                    );
                } else if n == 8 {
                    println!("  ...");
                }
            }
            Err(fastsc::compiler::CompileError::QueueFull) => outcomes[1] += 1,
            Err(fastsc::compiler::CompileError::Deadline) => outcomes[2] += 1,
            Err(error) => println!("  {id}: failed: {error}"),
        }
    }
    println!(
        "\n{} compiled, {} shed under pressure, {} expired",
        outcomes[0], outcomes[1], outcomes[2]
    );

    // The final snapshot: lifecycle counters, per-priority latency
    // percentiles, and the fleet's schedule-cache counters.
    let stats = queue.stats();
    println!("\nqueue stats:");
    println!(
        "  admitted {} | completed {} | shed {} | expired {} | rejected {}",
        stats.admitted, stats.completed, stats.shed, stats.expired, stats.rejected
    );
    for priority in Priority::all() {
        let latency = stats.latency(priority);
        if latency.count > 0 {
            println!(
                "  {priority:<12} p50 {:>9.2?}  p90 {:>9.2?}  p99 {:>9.2?}  ({} completions)",
                latency.p50, latency.p90, latency.p99, latency.count
            );
        }
    }
    println!(
        "  cache: {} hits / {} misses / {} evictions across {} shards",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        queue.service().shard_count()
    );
}

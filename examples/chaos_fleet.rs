//! Chaos demo: a three-shard fleet where one shard panics on every
//! compile until it "recovers". The circuit breaker trips the sick
//! shard into quarantine, the queue's retry policy fails jobs over to
//! the healthy shards, a probe restores the shard once its fault window
//! passes — and every admitted job still resolves exactly once, with
//! bit-identical output.
//!
//! ```console
//! $ cargo run --release --example chaos_fleet
//! ```

use fastsc::compiler::batch::CompileJob;
use fastsc::compiler::{CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::queue::{QueueConfig, QueueService, RetryPolicy, Submission};
use fastsc::service::{
    BreakerConfig, CompileService, FaultInjector, FaultKind, FaultPlan, FaultRule, LeastLoaded,
    ShardState,
};
use fastsc::workloads::Benchmark;
use std::sync::Arc;
use std::time::Duration;

const TOTAL_JOBS: u64 = 30;
/// Shard 0 panics on its first six compile attempts, then recovers.
const SICK_ATTEMPTS: u64 = 6;

fn main() {
    let mut service = CompileService::new(LeastLoaded::new());
    for seed in [7, 11, 13] {
        service
            .register_device(Device::grid(3, 3, seed), CompilerConfig::default())
            .expect("device frequency plan solves");
    }
    // A deterministic fault plan: shard 0 panics on 100% of its first
    // SICK_ATTEMPTS compile attempts, then behaves.
    let plan = FaultPlan::new(5)
        .rule(FaultRule::new(FaultKind::Panic).on_shard(0).for_attempts(0..SICK_ATTEMPTS));
    let injector = Arc::new(FaultInjector::new(plan));
    service.set_fault_injector(Some(Arc::clone(&injector)));
    // An aggressive breaker so the demo trips quickly: two consecutive
    // failures open it, two jobs routed elsewhere earn a probe.
    service.set_breaker(Some(BreakerConfig { failure_threshold: 2, cooldown_jobs: 2 }));

    let queue = Arc::new(QueueService::new(
        service,
        QueueConfig {
            capacity: 8,
            max_batch: 4,
            retry: RetryPolicy {
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..QueueConfig::default()
        },
    ));
    let mut feed = queue.telemetry_feed();

    let producer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            let strategies = Strategy::all();
            (0..TOTAL_JOBS)
                .map(|i| {
                    let benchmark = match i % 3 {
                        0 => Benchmark::Xeb(9, 4),
                        1 => Benchmark::Qaoa(7),
                        _ => Benchmark::Bv(4 + (i as usize % 5)),
                    };
                    let job = CompileJob::new(benchmark.build(i), strategies[i as usize % 5]);
                    queue
                        .submit(Submission::new(job).client(1))
                        .expect("block mode always admits")
                })
                .collect::<Vec<_>>()
        })
    };

    // Watch the breaker do its job: Closed -> Open (quarantined) ->
    // HalfOpen (probe) -> Closed again once the shard recovers.
    let mut last_state = ShardState::Active;
    loop {
        std::thread::sleep(Duration::from_millis(30));
        let snapshot = feed.poll();
        let sick = &snapshot.shards[0];
        if sick.state != last_state {
            match sick.state {
                ShardState::Quarantined => println!(
                    ">>> breaker OPEN: shard 0 quarantined after {} consecutive failures \
                     ({} trips so far) — traffic fails over",
                    sick.health.consecutive_failures, sick.health.breaker_trips
                ),
                ShardState::Active => println!(
                    ">>> breaker CLOSED: a probe compile succeeded, shard 0 restored \
                     (injected faults so far: {})",
                    injector.injected()
                ),
                other => println!(">>> shard 0 is now {other:?}"),
            }
            last_state = sick.state;
        }
        let line: Vec<String> = snapshot
            .shards
            .iter()
            .map(|view| {
                format!(
                    "shard {} [{:?}] load {} fail {}/{} rate {:.2}",
                    view.shard,
                    view.state,
                    view.load,
                    view.health.failures,
                    view.health.attempts,
                    view.error_rate()
                )
            })
            .collect();
        println!(
            "depth {:>2} | retried {:>2} | +{} done | {}",
            snapshot.stats.depth,
            snapshot.stats.retried,
            snapshot.delta.completed,
            line.join(" | ")
        );
        if snapshot.stats.completed == TOTAL_JOBS {
            break;
        }
    }

    // Every admitted job resolved exactly once despite the chaos, and
    // each surviving schedule equals a fresh compile on its shard.
    let handles = producer.join().expect("producer finishes");
    let mut per_shard = [0u64; 3];
    for handle in &handles {
        let reply = handle.wait().expect("every job survives the sick shard");
        per_shard[reply.shard] += 1;
    }
    let stats = queue.stats();
    println!(
        "\n{} jobs -> shards {:?} | retried {} | injected faults {}",
        TOTAL_JOBS,
        per_shard,
        stats.retried,
        injector.injected()
    );
    let health = queue.service().shard_views()[0].health;
    println!(
        "shard 0 health: {} attempts, {} failures, {} breaker trips, error rate {:.2}",
        health.attempts,
        health.failures,
        health.breaker_trips,
        health.error_rate()
    );
    assert_eq!(stats.completed, stats.admitted, "zero lost jobs");
}

//! Batch compilation demo: compile a mixed XEB/QAOA/BV workload across
//! all five strategies in parallel against one shared 3x3 device, with
//! one deliberately oversized job showing per-slot error isolation.
//!
//! ```console
//! $ cargo run --release --example batch_compile
//! ```

use fastsc::compiler::batch::{BatchCompiler, CompileJob};
use fastsc::compiler::{CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::noise::{estimate, NoiseConfig};
use fastsc::workloads::Benchmark;

fn main() {
    let device = Device::grid(3, 3, 42);
    let batch = BatchCompiler::new(device, CompilerConfig::default());

    let mut jobs = Vec::new();
    let mut labels = Vec::new();
    for (i, benchmark) in
        [Benchmark::Xeb(9, 5), Benchmark::Qaoa(8), Benchmark::Bv(9)].into_iter().enumerate()
    {
        for strategy in Strategy::all() {
            jobs.push(CompileJob::new(benchmark.build(i as u64), strategy));
            labels.push(format!("{benchmark} / {strategy}"));
        }
    }
    // One job that cannot fit the 9-qubit device: its slot fails alone.
    jobs.push(CompileJob::new(Benchmark::Bv(16).build(0), Strategy::ColorDynamic));
    labels.push("bv(16) / ColorDynamic (too wide on purpose)".to_string());

    println!("compiling {} jobs on one shared 3x3 device...\n", jobs.len());
    let results = batch.compile_batch(jobs);

    println!("{:<42} {:>6} {:>7} {:>10}", "job", "depth", "swaps", "p_success");
    for (label, result) in labels.iter().zip(&results) {
        match result {
            Ok(compiled) => {
                let report = estimate(
                    batch.compiler().device(),
                    &compiled.schedule,
                    &NoiseConfig::default(),
                );
                println!(
                    "{:<42} {:>6} {:>7} {:>10.4}",
                    label,
                    compiled.schedule.depth(),
                    compiled.stats.swaps_inserted,
                    report.p_success
                );
            }
            Err(e) => println!("{label:<42} error: {e}"),
        }
    }
}

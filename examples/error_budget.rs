//! Error-budget diagnostics: *why* does a schedule underperform?
//!
//! Compiles the same XEB workload under crosstalk-unaware Baseline N and
//! under ColorDynamic, then attributes every error to its channel: the
//! naive schedule's budget is dominated by resonant exchange collisions
//! between simultaneous gates; ColorDynamic's residual budget is sideband
//! leakage at SMT-separated frequencies, orders of magnitude smaller.
//!
//! ```bash
//! cargo run --release --example error_budget
//! ```

use fastsc::compiler::{Compiler, CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::noise::{error_budget, estimate, NoiseConfig};
use fastsc::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::grid(4, 4, 2020);
    let compiler = Compiler::new(device, CompilerConfig::default());
    let program = Benchmark::Xeb(16, 5).build(7);

    for strategy in [Strategy::BaselineN, Strategy::ColorDynamic] {
        let compiled = compiler.compile(&program, strategy)?;
        let report = estimate(compiler.device(), &compiled.schedule, &NoiseConfig::default());
        let budget = error_budget(compiler.device(), &compiled.schedule);

        println!("== {} ==", strategy.label());
        println!(
            "P_success = {:.4}  (crosstalk {:.4}, decoherence {:.4}, gates {:.4})",
            report.p_success,
            report.crosstalk_error(),
            report.decoherence_error(),
            budget.gate_error
        );
        println!("top crosstalk channels:");
        for c in budget.top_crosstalk(5) {
            println!(
                "  qubits {:?}  cycle {:<3}  {:?}  detuning {:>7.4} GHz  error {:.3e}",
                c.pair, c.cycle, c.kind, c.detuning, c.error
            );
        }
        if let Some((q, e)) = budget.worst_qubit() {
            println!("worst decoherence: qubit {q} at {e:.5}");
        }
        println!();
    }
    println!("Baseline N's budget is saturated resonances (detuning ~ 0) between");
    println!("parallel gates; ColorDynamic's residual channels sit hundreds of MHz");
    println!("off resonance, each contributing <1e-3.");
    Ok(())
}

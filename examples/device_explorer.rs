//! Explore device topologies and their crosstalk graphs: sizes, colorings
//! (including the paper's 8-coloring of the mesh, Fig. 7), and how
//! connectivity density drives frequency crowding (Fig. 13's x-axis).
//!
//! ```bash
//! cargo run --release --example device_explorer
//! ```

use fastsc::graph::coloring;
use fastsc::graph::crosstalk::{mesh_eight_coloring, CrosstalkGraph};
use fastsc::graph::topology::{self, Topology};

fn main() {
    // Fig. 7: the 5x5 mesh, its bipartite idle coloring, and the
    // structured 8-coloring of the distance-1 crosstalk graph.
    let mesh = topology::grid(5, 5);
    let idle = coloring::two_coloring(&mesh).expect("meshes are bipartite");
    let xtalk = CrosstalkGraph::build(&mesh, 1);
    let eight = mesh_eight_coloring(5, 5);
    println!("5x5 mesh: {} qubits, {} couplings", mesh.node_count(), mesh.edge_count());
    println!(
        "  idle coloring: {} colors; crosstalk graph: {} vertices, {} edges",
        coloring::color_count(&idle),
        xtalk.graph().node_count(),
        xtalk.graph().edge_count()
    );
    println!(
        "  structured mesh coloring: {} colors (proper: {})",
        coloring::color_count(&eight),
        coloring::is_proper(xtalk.graph(), &eight)
    );
    let greedy = coloring::welsh_powell(xtalk.graph());
    println!(
        "  Welsh-Powell greedy on the same graph: {} colors",
        coloring::color_count(&greedy)
    );
    println!();

    // Crosstalk locality: the color count does not grow with mesh size.
    println!("mesh size sweep (crosstalk stays local, paper §IV-C-2):");
    for side in [3, 4, 5, 6, 7, 8] {
        let colors = mesh_eight_coloring(side, side);
        println!(
            "  {side}x{side}: {} couplings, structured coloring uses {} colors",
            topology::grid(side, side).edge_count(),
            coloring::color_count(&colors)
        );
    }
    println!();

    // Fig. 13 x-axis: connectivity families from sparse to dense.
    println!(
        "{:<8} {:>9} {:>10} {:>16} {:>14}",
        "family", "couplings", "max deg", "xtalk edges d=1", "greedy colors"
    );
    for t in Topology::fig13_sweep() {
        let g = t.build(16);
        let x = CrosstalkGraph::build(&g, 1);
        let colors = coloring::welsh_powell(x.graph());
        println!(
            "{:<8} {:>9} {:>10} {:>16} {:>14}",
            t.label(),
            g.edge_count(),
            g.max_degree(),
            x.graph().edge_count(),
            coloring::color_count(&colors)
        );
    }
    println!();
    println!("Denser connectivity inflates the crosstalk graph much faster than");
    println!("the coupling count: frequency crowding is the price of density.");
}

//! Observability demo: per-job span trees and a Prometheus metrics
//! scrape, in-process and over the wire.
//!
//! Runs the full loop twice. In-process: a traced [`Submission`]
//! through the async queue, walking the finished [`SpanTree`] and
//! writing a Chrome `trace_event` export (open it in
//! `chrome://tracing` or Perfetto). Over the wire: `submit` with
//! `trace: true` against a loopback TCP server, printing the span tree
//! that rides the result frame, then a `metrics` scrape of the
//! process-wide registry in Prometheus text exposition format.
//!
//! ```console
//! $ cargo run --release --example observability
//! ```

use fastsc::compiler::batch::CompileJob;
use fastsc::compiler::{CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::ir::qasm::to_qasm;
use fastsc::queue::{Priority, QueueService, Submission};
use fastsc::server::{Client, Json, Server, TenantConfig};
use fastsc::service::{CapacityAware, CompileService};
use fastsc::telemetry::SpanNode;
use fastsc::workloads::Benchmark;

/// Prints one span and its children as an indented tree with durations
/// and attributes.
fn print_span(node: &SpanNode, depth: usize) {
    let micros = node.duration().as_nanos() as f64 / 1_000.0;
    let attrs: Vec<String> = node.attrs.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
    println!(
        "{:indent$}{:<12} {micros:>9.1} µs  {}",
        "",
        node.name,
        attrs.join(" "),
        indent = depth * 2
    );
    for child in &node.children {
        print_span(child, depth + 1);
    }
}

/// Prints a wire-format span tree (nested JSON objects).
fn print_wire_span(node: &Json, depth: usize) {
    let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
    let dur = node.get("dur_ns").and_then(Json::as_f64).unwrap_or(0.0) / 1_000.0;
    println!("{:indent$}{name:<12} {dur:>9.1} µs", "", indent = depth * 2);
    if let Some(Json::Arr(children)) = node.get("children") {
        for child in children {
            print_wire_span(child, depth + 1);
        }
    }
}

fn fleet() -> CompileService {
    let mut service = CompileService::new(CapacityAware::new());
    for device in [Device::grid(3, 3, 7), Device::grid(4, 4, 23)] {
        service
            .register_device(device, CompilerConfig::default())
            .expect("device frequency plan solves");
    }
    service
}

fn main() {
    // ---- In-process: a traced submission through the queue. ----
    let queue = QueueService::with_defaults(fleet());
    let program = Benchmark::Xeb(9, 4).build(42);
    let submission = Submission::new(CompileJob::new(program, Strategy::ColorDynamic))
        .priority(Priority::Interactive)
        .traced();
    let handle = queue.submit(submission).expect("admitted");
    let id = handle.id();
    handle.wait().expect("compiles");
    let tree = queue.take_trace(id).expect("traced job parks its tree");

    println!("== span tree (in-process) ==");
    print_span(tree.root().expect("one root"), 0);

    // The same tree as Chrome trace_event JSON: save it and load the
    // file in chrome://tracing or ui.perfetto.dev for a flame chart.
    let chrome = tree.to_chrome_trace();
    let out = std::env::temp_dir().join("fastsc_trace.json");
    std::fs::write(&out, &chrome).expect("trace file writes");
    println!("\nchrome trace ({} bytes) -> {}", chrome.len(), out.display());
    drop(queue);

    // ---- Over the wire: trace + metrics against a TCP server. ----
    let tenants = vec![TenantConfig::generous("ops-token", "ops", 1)];
    let mut server =
        Server::start(QueueService::with_defaults(fleet()), tenants).expect("loopback bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.hello("ops-token").expect("token authenticates");

    let qasm = to_qasm(&Benchmark::Qaoa(8).build(7));
    let job =
        client.submit_traced(&qasm, "ColorDynamic", "interactive", None).expect("submits");
    let outcome = client.wait(job, 30_000).expect("wait").expect("finishes");
    println!("\n== span tree (over the wire, job {job}) ==");
    print_wire_span(outcome.trace.as_ref().expect("traced frame carries the tree"), 0);

    // One Prometheus scrape of the process-wide registry.
    let text = client.metrics_text().expect("metrics scrape");
    println!("\n== prometheus exposition (first lines) ==");
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)", text.lines().count());
    server.shutdown();
}

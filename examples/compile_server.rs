//! Network serving demo: a loopback TCP compile server and two tenant
//! clients in one process. One tenant submits QASM programs (including
//! a malformed one, to show the structured error frames), subscribes to
//! its completion stream, and pulls a telemetry snapshot; a second
//! tenant with a deliberately tiny quota shows admission control.
//!
//! ```console
//! $ cargo run --release --example compile_server
//! ```

use fastsc::compiler::{CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::ir::qasm::to_qasm;
use fastsc::queue::QueueService;
use fastsc::server::{Client, ClientError, Server, TenantConfig};
use fastsc::service::{CapacityAware, CompileService};
use fastsc::workloads::Benchmark;
use std::time::Duration;

fn main() {
    // A two-device fleet behind the async queue — exactly the stack the
    // earlier examples build — now fronted by a TCP wire protocol.
    let mut service = CompileService::new(CapacityAware::new());
    for device in [Device::grid(3, 3, 7), Device::grid(4, 4, 23)] {
        service
            .register_device(device, CompilerConfig::default())
            .expect("device frequency plan solves");
    }
    let tenants = vec![
        TenantConfig::generous("alice-token", "alice", 1),
        // Bob gets one in-flight job and no refill: the second submit
        // in a burst bounces with a structured error.
        TenantConfig {
            token: "bob-token".to_owned(),
            name: "bob".to_owned(),
            client: 2,
            max_inflight: 1,
            rate_per_sec: 0.0,
            burst: 2,
        },
    ];
    let mut server =
        Server::start(QueueService::with_defaults(service), tenants).expect("loopback bind");
    println!("serving on {}", server.addr());

    // Alice: authenticate, subscribe to completions, submit real work.
    let mut alice = Client::connect(server.addr()).expect("connect");
    let name = alice.hello("alice-token").expect("token authenticates");
    println!("authenticated as {name}");
    alice.subscribe().expect("subscription registers");

    let programs = [
        Benchmark::Xeb(9, 4).build(42),
        Benchmark::Qaoa(8).build(7),
        Benchmark::Bv(6).build(1),
    ];
    for (program, strategy) in programs.iter().zip(Strategy::all()) {
        let qasm = to_qasm(program);
        let job = alice
            .submit(&qasm, &strategy.to_string(), "interactive", Some(30_000))
            .expect("submission admitted");
        let outcome = alice.wait(job, 60_000).expect("wait answers").expect("job resolves");
        println!(
            "job {job} ({strategy}): shard {} depth {} schedule hash {:016x}",
            outcome.shard.expect("compiled jobs carry a shard"),
            outcome.depth.expect("compiled jobs carry a depth"),
            outcome.schedule_hash.expect("compiled jobs carry a hash"),
        );
    }

    // Malformed QASM: the server answers with a typed, located error
    // frame and the connection stays usable.
    let bad = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nwarp q[0];\n";
    match alice.submit(bad, "ColorDynamic", "batch", None) {
        Err(ClientError::Server { code, message, line, column, token, .. }) => println!(
            "malformed submit rejected [{code}] line {:?} column {:?} token {:?}: {message}",
            line, column, token
        ),
        other => println!("unexpected reply to malformed submit: {other:?}"),
    }
    alice.ping().expect("connection survived the bad program");

    // The subscription streamed every completion while we waited.
    let mut streamed = 0;
    while let Ok(Some(event)) = alice.next_event(Duration::from_millis(200)) {
        if event.get("type").and_then(fastsc::server::Json::as_str) == Some("completion") {
            streamed += 1;
        }
    }
    println!("subscription streamed {streamed} completion frames");

    // One telemetry snapshot: per-shard state plus queue counters.
    let frames = alice.telemetry(1, 100).expect("telemetry streams");
    for frame in &frames {
        if let Some(shards) = frame.get("shards").and_then(fastsc::server::Json::as_array) {
            println!("telemetry: {} shards reporting", shards.len());
        }
    }

    // Bob: quota of one in-flight job, so a two-submit burst loses the
    // second to admission control with a retryable error. Pausing the
    // dispatcher keeps the first job in flight for the demo.
    let mut bob = Client::connect(server.addr()).expect("connect");
    bob.hello("bob-token").expect("token authenticates");
    let qasm = to_qasm(&Benchmark::Xeb(9, 6).build(3));
    server.queue().pause();
    let first = bob.submit(&qasm, "BaselineN", "batch", None).expect("first fits the quota");
    match bob.submit(&qasm, "BaselineN", "batch", None) {
        Err(ClientError::Server { code, .. }) => {
            println!("bob's second submit rejected [{code}] while job {first} is in flight")
        }
        Ok(job) => println!("bob's second submit landed as job {job} (first already done)"),
        Err(other) => println!("unexpected: {other}"),
    }
    server.queue().resume();
    bob.wait(first, 60_000).expect("wait answers");

    // Graceful shutdown drains in-flight work and notifies connections.
    drop(alice);
    drop(bob);
    server.shutdown();
    println!("server drained and stopped");
}

//! Compile-service demo: a three-device fleet behind the shard router,
//! compiling one skewed mixed batch, then resubmitting it to show the
//! whole-schedule result cache serving repeat traffic.
//!
//! ```console
//! $ cargo run --release --example compile_service
//! ```

use fastsc::compiler::batch::CompileJob;
use fastsc::compiler::{CompilerConfig, Strategy};
use fastsc::device::Device;
use fastsc::service::{CompileService, LeastLoaded};
use fastsc::workloads::Benchmark;
use std::time::Instant;

fn main() {
    // A heterogeneous fleet: two 3x3 meshes with different fabrication
    // seeds and one 4x4 mesh. Registration builds each shard's compile
    // context (crosstalk graph, parking plan, SMT memo) exactly once.
    let mut service = CompileService::new(LeastLoaded::new());
    for device in [Device::grid(3, 3, 7), Device::grid(3, 3, 11), Device::grid(4, 4, 23)] {
        let shard = service
            .register_device(device, CompilerConfig::default())
            .expect("device frequency plan solves");
        println!(
            "registered shard {shard}: {} qubits (seed {})",
            service.shard_device(shard).n_qubits(),
            service.shard_device(shard).seed()
        );
    }

    // A skewed batch: a few heavy XEB jobs up front, a tail of cheap BV
    // programs, all five strategies mixed in. The router assigns jobs to
    // shards; the work-stealing pool keeps every core busy even though
    // job costs differ by orders of magnitude.
    let strategies = Strategy::all();
    let mut jobs: Vec<CompileJob> = (0..3)
        .map(|i| CompileJob::new(Benchmark::Xeb(9, 24).build(i), Strategy::ColorDynamic))
        .collect();
    for i in 0..20u64 {
        let benchmark = if i % 2 == 0 { Benchmark::Bv(6) } else { Benchmark::Qaoa(7) };
        jobs.push(CompileJob::new(benchmark.build(i), strategies[i as usize % 5]));
    }
    // One job too wide for every shard: per-job isolation keeps its
    // failure in its own slot (and failures are never cached).
    jobs.push(CompileJob::new(Benchmark::Bv(25).build(0), Strategy::ColorDynamic));

    println!("\ncompiling {} jobs across {} shards...", jobs.len(), service.shard_count());
    let start = Instant::now();
    let cold = service.compile_batch(jobs.clone());
    let cold_time = start.elapsed();

    let mut per_shard = vec![0usize; service.shard_count()];
    for reply in cold.iter().flatten() {
        per_shard[reply.shard] += 1;
    }
    let failures = cold.iter().filter(|r| r.is_err()).count();
    println!(
        "cold batch: {:?}  (jobs per shard: {:?}, failures: {failures})",
        cold_time, per_shard
    );

    // Resubmit the identical batch: every job is served from the
    // whole-schedule result cache, bit-identical to the cold run.
    let start = Instant::now();
    let warm = service.compile_batch(jobs);
    let warm_time = start.elapsed();
    let hits = warm.iter().flatten().filter(|r| r.cache_hit).count();
    println!("warm batch: {:?}  ({hits}/{} cache hits)", warm_time, warm.len());

    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        if let (Ok(c), Ok(w)) = (c, w) {
            assert_eq!(c.compiled.schedule, w.compiled.schedule, "job {i} diverged");
        }
    }
    println!("verified: warm schedules are identical to cold schedules");

    for shard in 0..service.shard_count() {
        let stats = service.cache_stats(shard);
        println!(
            "shard {shard} cache: {} entries, {} hits / {} misses",
            stats.len, stats.hits, stats.misses
        );
    }
}
